"""SVG rendering of layouts.

The paper illustrates its flow with layout snapshots (Figures 1(b) and 7);
this module produces equivalent pictures as standalone SVG files: the layout
boundary, device outlines coloured by type, microstrip centre-lines at their
physical width (optionally smoothed), and markers at bends.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.circuit.device import DeviceType
from repro.layout.layout import Layout
from repro.layout.smoothing import smooth_layout

PathLike = Union[str, Path]

#: Fill colours per device type.
_DEVICE_COLOURS = {
    DeviceType.TRANSISTOR: "#4d7cba",
    DeviceType.CAPACITOR: "#67a866",
    DeviceType.INDUCTOR: "#b08f4a",
    DeviceType.RESISTOR: "#a46fb0",
    DeviceType.RF_PAD: "#c4563e",
    DeviceType.DC_PAD: "#d19a3f",
    DeviceType.GENERIC: "#8a8a8a",
}

_STRIP_COLOUR = "#caa45f"
_BEND_COLOUR = "#d04040"
_BOUNDARY_COLOUR = "#303030"


def layout_to_svg(
    layout: Layout,
    scale: float = 1.0,
    smooth: bool = True,
    show_labels: bool = True,
    show_bends: bool = True,
    margin: float = 20.0,
    title: Optional[str] = None,
) -> str:
    """Render a layout as an SVG document string.

    Parameters
    ----------
    layout:
        The layout to draw (may be partial).
    scale:
        Pixels per micrometre.
    smooth:
        Draw the octilinear smoothed microstrips instead of the rectilinear
        skeleton.
    show_labels:
        Draw device names.
    show_bends:
        Mark bend locations of the rectilinear skeleton.
    margin:
        White margin around the layout area in micrometres.
    title:
        Optional document title (rendered as the SVG ``<title>`` element —
        the layout service labels served pictures with the job's label and
        content hash this way).
    """
    area = layout.netlist.area
    width_px = (area.width + 2 * margin) * scale
    height_px = (area.height + 2 * margin) * scale

    def tx(x: float) -> float:
        return (x + margin) * scale

    def ty(y: float) -> float:
        # SVG's y axis points down; layout coordinates point up.
        return (area.height - y + margin) * scale

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.1f}" '
        f'height="{height_px:.1f}" viewBox="0 0 {width_px:.1f} {height_px:.1f}">'
    )
    if title:
        parts.append(f"<title>{html.escape(title)}</title>")
    parts.append(
        f'<rect x="0" y="0" width="{width_px:.1f}" height="{height_px:.1f}" fill="white"/>'
    )
    parts.append(
        f'<rect x="{tx(0):.2f}" y="{ty(area.height):.2f}" '
        f'width="{area.width * scale:.2f}" height="{area.height * scale:.2f}" '
        f'fill="#f7f7f2" stroke="{_BOUNDARY_COLOUR}" stroke-width="{max(1.0, scale):.2f}"/>'
    )

    # --- microstrips -------------------------------------------------------
    smoothed = smooth_layout(layout) if smooth else {}
    for route in layout.routes:
        width = route.width or layout.netlist.microstrip_width(route.net_name)
        stroke_width = max(1.0, width * scale)
        if smooth and route.net_name in smoothed:
            points = smoothed[route.net_name].vertices
        else:
            points = route.path.points
        coords = " ".join(f"{tx(p.x):.2f},{ty(p.y):.2f}" for p in points)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{_STRIP_COLOUR}" '
            f'stroke-width="{stroke_width:.2f}" stroke-linejoin="round" '
            f'stroke-linecap="round" opacity="0.9">'
            f"<title>{html.escape(route.net_name)}</title></polyline>"
        )
        if show_bends:
            for bend in route.path.bend_points():
                parts.append(
                    f'<circle cx="{tx(bend.x):.2f}" cy="{ty(bend.y):.2f}" '
                    f'r="{max(2.0, 2.5 * scale):.2f}" fill="none" '
                    f'stroke="{_BEND_COLOUR}" stroke-width="{max(1.0, scale):.2f}"/>'
                )

    # --- devices ------------------------------------------------------------
    for placement in layout.placements:
        device = layout.netlist.device(placement.device_name)
        outline = placement.outline(device)
        colour = _DEVICE_COLOURS.get(device.device_type, _DEVICE_COLOURS[DeviceType.GENERIC])
        parts.append(
            f'<rect x="{tx(outline.xl):.2f}" y="{ty(outline.yu):.2f}" '
            f'width="{outline.width * scale:.2f}" height="{outline.height * scale:.2f}" '
            f'fill="{colour}" fill-opacity="0.75" stroke="#202020" '
            f'stroke-width="{max(0.5, 0.5 * scale):.2f}">'
            f"<title>{html.escape(device.name)}</title></rect>"
        )
        if show_labels:
            font_size = max(6.0, 7.0 * scale)
            parts.append(
                f'<text x="{tx(outline.center.x):.2f}" y="{ty(outline.center.y):.2f}" '
                f'font-size="{font_size:.1f}" text-anchor="middle" '
                f'dominant-baseline="central" fill="#101010" '
                f'font-family="sans-serif">{html.escape(device.name)}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(layout: Layout, path: PathLike, **kwargs) -> Path:
    """Render a layout and write it to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(layout_to_svg(layout, **kwargs), encoding="utf-8")
    return path


def save_phase_snapshots(
    snapshots: Dict[str, Layout], directory: PathLike, **kwargs
) -> List[Path]:
    """Write one SVG per named snapshot (mirrors Figure 7 of the paper)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, layout in snapshots.items():
        written.append(save_svg(layout, directory / f"{name}.svg", **kwargs))
    return written
