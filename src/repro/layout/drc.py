"""Design-rule checking for RFIC layouts.

The checker verifies, independently of any optimiser, the constraints of the
paper's problem formulation (Section 3):

* every device is placed inside the layout area and every microstrip segment
  stays inside it,
* the spacing rule (``2t``) holds between every pair of devices / segments
  that are not electrically joined,
* no two microstrips cross (planar routing),
* pads sit on the layout boundary,
* microstrip end points coincide with the pins they must connect,
* the equivalent length of every microstrip matches its required value.

Violations are returned as data, never raised, so callers can decide whether
a partially-converged intermediate layout (e.g. a Phase 1 snapshot) is good
enough to continue from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Netlist
from repro.geometry.overlap import overlap_extents
from repro.geometry.point import GEOM_TOL, Point
from repro.geometry.rect import Rect
from repro.layout.layout import Layout

#: Length-matching tolerance in micrometres.  The ILP matches lengths to
#: solver precision; anything below 0.5 um is far below what affects the RF
#: response at 94 GHz (where a guided wavelength is ~1600 um).
LENGTH_TOLERANCE_UM = 0.5

#: Tolerance for pin-connection and boundary coincidence checks.
POSITION_TOLERANCE_UM = 0.5


class ViolationKind(enum.Enum):
    """Category of a DRC violation."""

    OUTSIDE_AREA = "outside-area"
    SPACING = "spacing"
    CROSSING = "crossing"
    PAD_NOT_ON_BOUNDARY = "pad-not-on-boundary"
    OPEN_CONNECTION = "open-connection"
    LENGTH_MISMATCH = "length-mismatch"
    MISSING_PLACEMENT = "missing-placement"
    MISSING_ROUTE = "missing-route"


@dataclass(frozen=True)
class DRCViolation:
    """One violation found by the checker."""

    kind: ViolationKind
    subject: str
    other: str = ""
    amount: float = 0.0
    message: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        target = f" vs {self.other}" if self.other else ""
        return f"{self.kind.value}: {self.subject}{target} ({self.message})"


@dataclass
class DRCReport:
    """All violations of a layout plus a few convenience views."""

    violations: List[DRCViolation]

    @property
    def is_clean(self) -> bool:
        return not self.violations

    def by_kind(self, kind: ViolationKind) -> List[DRCViolation]:
        return [violation for violation in self.violations if violation.kind is kind]

    def count(self, kind: Optional[ViolationKind] = None) -> int:
        if kind is None:
            return len(self.violations)
        return len(self.by_kind(kind))

    def summary(self) -> Dict[str, int]:
        """Violation counts per kind (only non-zero entries)."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind.value] = counts.get(violation.kind.value, 0) + 1
        return counts


class DesignRuleChecker:
    """Configurable design-rule checker.

    Parameters
    ----------
    length_tolerance:
        Allowed absolute deviation of equivalent length from the target, µm.
    position_tolerance:
        Allowed distance between a route end and its pin, µm.
    check_lengths, check_spacing, check_crossings:
        Individual checks can be disabled for intermediate-phase snapshots.
    """

    def __init__(
        self,
        length_tolerance: float = LENGTH_TOLERANCE_UM,
        position_tolerance: float = POSITION_TOLERANCE_UM,
        check_lengths: bool = True,
        check_spacing: bool = True,
        check_crossings: bool = True,
    ) -> None:
        self.length_tolerance = length_tolerance
        self.position_tolerance = position_tolerance
        self.check_lengths = check_lengths
        self.check_spacing = check_spacing
        self.check_crossings = check_crossings

    # ------------------------------------------------------------------ #

    def check(self, layout: Layout) -> DRCReport:
        """Run all enabled checks and return the report."""
        violations: List[DRCViolation] = []
        violations.extend(self._check_completeness(layout))
        violations.extend(self._check_inside_area(layout))
        violations.extend(self._check_pads_on_boundary(layout))
        violations.extend(self._check_connections(layout))
        if self.check_spacing:
            violations.extend(self._check_spacing(layout))
        if self.check_crossings:
            violations.extend(self._check_crossings(layout))
        if self.check_lengths:
            violations.extend(self._check_lengths(layout))
        return DRCReport(violations)

    # ------------------------------------------------------------------ #
    # individual checks
    # ------------------------------------------------------------------ #

    def _check_completeness(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        for device in layout.netlist.devices:
            if not layout.has_placement(device.name):
                violations.append(
                    DRCViolation(
                        ViolationKind.MISSING_PLACEMENT,
                        device.name,
                        message="device has no placement",
                    )
                )
        for net in layout.netlist.microstrips:
            if not layout.has_route(net.name):
                violations.append(
                    DRCViolation(
                        ViolationKind.MISSING_ROUTE,
                        net.name,
                        message="microstrip has no routing",
                    )
                )
        return violations

    def _check_inside_area(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        boundary = layout.boundary
        for label, rect in layout.all_outlines().items():
            if not boundary.contains_rect(rect, tolerance=self.position_tolerance):
                overhang = max(
                    boundary.xl - rect.xl,
                    boundary.yl - rect.yl,
                    rect.xr - boundary.xr,
                    rect.yu - boundary.yu,
                )
                violations.append(
                    DRCViolation(
                        ViolationKind.OUTSIDE_AREA,
                        label,
                        amount=overhang,
                        message=f"extends {overhang:.2f} um beyond the layout area",
                    )
                )
        return violations

    def _check_pads_on_boundary(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        boundary = layout.boundary
        for device in layout.netlist.pads():
            if not layout.has_placement(device.name):
                continue
            outline = layout.device_outline(device.name)
            # The pad must sit with (at least) one edge on the layout boundary.
            distance_to_edge = min(
                abs(outline.xl - boundary.xl),
                abs(outline.xr - boundary.xr),
                abs(outline.yl - boundary.yl),
                abs(outline.yu - boundary.yu),
            )
            if distance_to_edge > self.position_tolerance:
                violations.append(
                    DRCViolation(
                        ViolationKind.PAD_NOT_ON_BOUNDARY,
                        device.name,
                        amount=distance_to_edge,
                        message=(
                            f"pad centre is {distance_to_edge:.2f} um away from the "
                            f"nearest boundary edge"
                        ),
                    )
                )
        return violations

    def _check_connections(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        for net in layout.netlist.microstrips:
            if not layout.has_route(net.name):
                continue
            route = layout.route(net.name)
            missing_placements = [
                terminal.device
                for terminal in net.terminals
                if not layout.has_placement(terminal.device)
            ]
            if missing_placements:
                continue  # reported as MISSING_PLACEMENT already
            start_pin, end_pin = layout.terminal_positions(net)
            route_start, route_end = route.path.start, route.path.end
            # The route may legitimately be stored end-to-start.
            direct = max(
                route_start.manhattan_distance(start_pin),
                route_end.manhattan_distance(end_pin),
            )
            swapped = max(
                route_start.manhattan_distance(end_pin),
                route_end.manhattan_distance(start_pin),
            )
            gap = min(direct, swapped)
            # Devices with equivalent pins may connect to any pin in the group.
            if gap > self.position_tolerance:
                gap = self._equivalent_pin_gap(layout, net, route_start, route_end, gap)
            if gap > self.position_tolerance:
                violations.append(
                    DRCViolation(
                        ViolationKind.OPEN_CONNECTION,
                        net.name,
                        amount=gap,
                        message=f"route end is {gap:.2f} um away from its pin",
                    )
                )
        return violations

    def _equivalent_pin_gap(
        self,
        layout: Layout,
        net,
        route_start: Point,
        route_end: Point,
        current_gap: float,
    ) -> float:
        """Best gap allowing interchangeable (equivalence-group) pins."""
        best = current_gap
        start_device = layout.netlist.device(net.start.device)
        end_device = layout.netlist.device(net.end.device)
        start_candidates = [
            layout.pin_position(net.start.device, pin)
            for pin in start_device.equivalent_pins(net.start.pin)
        ]
        end_candidates = [
            layout.pin_position(net.end.device, pin)
            for pin in end_device.equivalent_pins(net.end.pin)
        ]
        for start_candidate in start_candidates:
            for end_candidate in end_candidates:
                direct = max(
                    route_start.manhattan_distance(start_candidate),
                    route_end.manhattan_distance(end_candidate),
                )
                swapped = max(
                    route_start.manhattan_distance(end_candidate),
                    route_end.manhattan_distance(start_candidate),
                )
                best = min(best, direct, swapped)
        return best

    def _check_spacing(self, layout: Layout) -> List[DRCViolation]:
        """Expanded-bounding-box overlap check (the paper's spacing rule)."""
        violations = []
        clearance = layout.netlist.technology.clearance
        outlines = layout.all_outlines(clearance=clearance)
        connected = self._electrically_joined_pairs(layout)
        labels = sorted(outlines)
        for label_a, label_b in combinations(labels, 2):
            if self._same_net(label_a, label_b):
                continue
            if frozenset((self._owner(label_a), self._owner(label_b))) in connected:
                continue
            overlap_x, overlap_y = overlap_extents(outlines[label_a], outlines[label_b])
            # Expanded boxes may touch; a violation needs area overlap beyond
            # numerical noise.
            if overlap_x > POSITION_TOLERANCE_UM and overlap_y > POSITION_TOLERANCE_UM:
                violations.append(
                    DRCViolation(
                        ViolationKind.SPACING,
                        label_a,
                        other=label_b,
                        amount=min(overlap_x, overlap_y),
                        message=(
                            f"expanded bounding boxes overlap by "
                            f"{overlap_x:.2f} x {overlap_y:.2f} um"
                        ),
                    )
                )
        return violations

    def _check_crossings(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        routes = layout.routes
        for route_a, route_b in combinations(routes, 2):
            for segment_a in route_a.segments():
                for segment_b in route_b.segments():
                    if segment_a.crosses(segment_b):
                        violations.append(
                            DRCViolation(
                                ViolationKind.CROSSING,
                                route_a.net_name,
                                other=route_b.net_name,
                                message="microstrip centre-lines cross",
                            )
                        )
                        break
                else:
                    continue
                break
        return violations

    def _check_lengths(self, layout: Layout) -> List[DRCViolation]:
        violations = []
        delta = layout.netlist.technology.bend_compensation
        for net in layout.netlist.microstrips:
            if not layout.has_route(net.name):
                continue
            route = layout.route(net.name)
            error = route.length_error(net, delta)
            if abs(error) > self.length_tolerance:
                violations.append(
                    DRCViolation(
                        ViolationKind.LENGTH_MISMATCH,
                        net.name,
                        amount=abs(error),
                        message=(
                            f"equivalent length {route.equivalent_length(delta):.2f} um "
                            f"!= target {net.target_length:.2f} um "
                            f"(error {error:+.2f} um)"
                        ),
                    )
                )
        return violations

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _owner(label: str) -> str:
        """Strip the segment index: ``net:m1[3]`` -> ``net:m1``."""
        return label.split("[", 1)[0]

    @staticmethod
    def _same_net(label_a: str, label_b: str) -> bool:
        """True when two outline labels belong to the same microstrip."""
        owner_a = DesignRuleChecker._owner(label_a)
        owner_b = DesignRuleChecker._owner(label_b)
        return owner_a == owner_b and owner_a.startswith("net:")

    @staticmethod
    def _electrically_joined_pairs(layout: Layout) -> set:
        """Pairs of outline owners allowed to touch/overlap.

        A microstrip is allowed to overlap the devices it terminates on (the
        line lands on the pin, which is inside the device outline expanded by
        the clearance), and two microstrips terminating on the same device
        may approach each other there (the pins of one device are routinely
        closer together than the inter-line spacing rule).
        """
        joined = set()
        device_to_nets: Dict[str, List[str]] = {}
        for net in layout.netlist.microstrips:
            for terminal in net.terminals:
                joined.add(frozenset((f"net:{net.name}", f"dev:{terminal.device}")))
                device_to_nets.setdefault(terminal.device, []).append(net.name)
        for nets in device_to_nets.values():
            for net_a, net_b in combinations(nets, 2):
                joined.add(frozenset((f"net:{net_a}", f"net:{net_b}")))
        return joined


def run_drc(layout: Layout, **kwargs) -> DRCReport:
    """Convenience wrapper: run the checker with default settings."""
    return DesignRuleChecker(**kwargs).check(layout)
