"""Layout quality metrics — the quantities reported in Table 1.

For a routed layout the paper reports the *maximum* number of bends on any
single microstrip, the *total* number of bends over all microstrips, the
layout area, and the generation runtime.  This module computes the first
three (runtime is measured by the flows themselves) plus a few additional
quantities used by the RF experiments and the documentation: per-net length
errors, total wirelength and area utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LayoutError
from repro.layout.layout import Layout


@dataclass(frozen=True)
class NetMetrics:
    """Per-microstrip metrics."""

    net_name: str
    bend_count: int
    geometric_length: float
    equivalent_length: float
    target_length: float

    @property
    def length_error(self) -> float:
        """Signed equivalent-length error against the target (µm)."""
        return self.equivalent_length - self.target_length

    @property
    def relative_length_error(self) -> float:
        """Length error normalised by the target length."""
        return self.length_error / self.target_length


@dataclass(frozen=True)
class LayoutMetrics:
    """Whole-layout metrics.

    Attributes mirror the columns of Table 1 (``max_bend_count``,
    ``total_bend_count``, ``area_um2``) plus supporting quantities.
    """

    circuit_name: str
    num_microstrips: int
    num_devices: int
    max_bend_count: int
    total_bend_count: int
    total_wirelength: float
    max_abs_length_error: float
    total_abs_length_error: float
    area_width: float
    area_height: float
    per_net: Dict[str, NetMetrics] = field(default_factory=dict)

    @property
    def area_um2(self) -> float:
        return self.area_width * self.area_height

    @property
    def area_label(self) -> str:
        """Area formatted the way Table 1 prints it, e.g. ``890x615``."""
        return f"{self.area_width:.0f}x{self.area_height:.0f}"

    @property
    def mean_bend_count(self) -> float:
        if not self.num_microstrips:
            return 0.0
        return self.total_bend_count / self.num_microstrips

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the experiment reports."""
        return {
            "circuit": self.circuit_name,
            "num_microstrips": self.num_microstrips,
            "num_devices": self.num_devices,
            "area": self.area_label,
            "max_bends": self.max_bend_count,
            "total_bends": self.total_bend_count,
            "total_wirelength_um": round(self.total_wirelength, 2),
            "max_abs_length_error_um": round(self.max_abs_length_error, 3),
            "total_abs_length_error_um": round(self.total_abs_length_error, 3),
        }


def compute_metrics(layout: Layout, require_complete: bool = False) -> LayoutMetrics:
    """Compute :class:`LayoutMetrics` for a layout.

    With ``require_complete=True`` a partially routed layout raises
    :class:`~repro.errors.LayoutError`; otherwise missing routes simply do not
    contribute.
    """
    netlist = layout.netlist
    if require_complete and not layout.is_complete:
        raise LayoutError(
            f"layout of {netlist.name!r} is incomplete: "
            f"{len(layout.placements)}/{netlist.num_devices} devices placed, "
            f"{len(layout.routes)}/{netlist.num_microstrips} microstrips routed"
        )

    delta = netlist.technology.bend_compensation
    per_net: Dict[str, NetMetrics] = {}
    for net in netlist.microstrips:
        if not layout.has_route(net.name):
            continue
        route = layout.route(net.name)
        per_net[net.name] = NetMetrics(
            net_name=net.name,
            bend_count=route.bend_count,
            geometric_length=route.geometric_length,
            equivalent_length=route.equivalent_length(delta),
            target_length=net.target_length,
        )

    bend_counts = [metric.bend_count for metric in per_net.values()]
    length_errors = [abs(metric.length_error) for metric in per_net.values()]

    return LayoutMetrics(
        circuit_name=netlist.name,
        num_microstrips=netlist.num_microstrips,
        num_devices=netlist.num_devices,
        max_bend_count=max(bend_counts) if bend_counts else 0,
        total_bend_count=sum(bend_counts),
        total_wirelength=sum(metric.geometric_length for metric in per_net.values()),
        max_abs_length_error=max(length_errors) if length_errors else 0.0,
        total_abs_length_error=sum(length_errors),
        area_width=netlist.area.width,
        area_height=netlist.area.height,
        per_net=per_net,
    )


def compare_metrics(
    baseline: LayoutMetrics, candidate: LayoutMetrics
) -> Dict[str, object]:
    """Compare two layouts of the same circuit (e.g. manual vs P-ILP).

    Returns the bend reductions the paper highlights: how much smaller the
    candidate's maximum and total bend counts are relative to the baseline.
    """
    if baseline.circuit_name != candidate.circuit_name:
        raise LayoutError(
            f"cannot compare metrics of different circuits: "
            f"{baseline.circuit_name!r} vs {candidate.circuit_name!r}"
        )

    def _reduction(before: float, after: float) -> Optional[float]:
        if before == 0:
            return None
        return (before - after) / before

    return {
        "circuit": baseline.circuit_name,
        "baseline_max_bends": baseline.max_bend_count,
        "candidate_max_bends": candidate.max_bend_count,
        "max_bend_reduction": _reduction(
            baseline.max_bend_count, candidate.max_bend_count
        ),
        "baseline_total_bends": baseline.total_bend_count,
        "candidate_total_bends": candidate.total_bend_count,
        "total_bend_reduction": _reduction(
            baseline.total_bend_count, candidate.total_bend_count
        ),
        "baseline_area": baseline.area_label,
        "candidate_area": candidate.area_label,
    }
