"""Layout model: placements, routed microstrips, DRC, metrics and export."""

from repro.layout.placement import Placement
from repro.layout.routing import RoutedMicrostrip
from repro.layout.layout import Layout
from repro.layout.drc import (
    DesignRuleChecker,
    DRCReport,
    DRCViolation,
    ViolationKind,
    run_drc,
)
from repro.layout.metrics import (
    LayoutMetrics,
    NetMetrics,
    compare_metrics,
    compute_metrics,
)
from repro.layout.smoothing import (
    SmoothedRoute,
    default_cut_length,
    smooth_layout,
    smooth_route,
    smoothing_length_change,
)
from repro.layout.export_svg import layout_to_svg, save_phase_snapshots, save_svg
from repro.layout.export_json import (
    layout_from_dict,
    layout_to_dict,
    load_layout,
    save_layout,
)

__all__ = [
    "Placement",
    "RoutedMicrostrip",
    "Layout",
    "DesignRuleChecker",
    "DRCReport",
    "DRCViolation",
    "ViolationKind",
    "run_drc",
    "LayoutMetrics",
    "NetMetrics",
    "compute_metrics",
    "compare_metrics",
    "SmoothedRoute",
    "smooth_route",
    "smooth_layout",
    "default_cut_length",
    "smoothing_length_change",
    "layout_to_svg",
    "save_svg",
    "save_phase_snapshots",
    "layout_to_dict",
    "layout_from_dict",
    "save_layout",
    "load_layout",
]
