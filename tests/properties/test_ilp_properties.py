"""Property-based tests for the MILP modelling layer and solver backends."""

import math

from hypothesis import given, settings, strategies as st

from repro.ilp import LinExpr, Model, SolveStatus

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestExpressionAlgebra:
    @given(st.lists(finite, min_size=1, max_size=6), finite)
    def test_evaluation_matches_manual_sum(self, coefficients, constant):
        model = Model()
        variables = [model.add_continuous(f"x{i}", lb=-100, ub=100) for i in range(len(coefficients))]
        expr = LinExpr.sum(
            [c * v for c, v in zip(coefficients, variables)] + [constant]
        )
        assignment = {v: 1.5 for v in variables}
        expected = sum(1.5 * c for c in coefficients) + constant
        assert math.isclose(expr.value(assignment), expected, rel_tol=1e-9, abs_tol=1e-9)

    @given(finite, finite, finite)
    def test_arithmetic_identities(self, a, b, c):
        model = Model()
        x = model.add_continuous("x", lb=-100, ub=100)
        left = a * (x + b) + c
        right = a * x + (a * b + c)
        assignment = {x: 2.25}
        assert math.isclose(left.value(assignment), right.value(assignment), rel_tol=1e-9, abs_tol=1e-7)


class TestSolverProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.integers(min_value=1, max_value=9),
            ),
            min_size=1,
            max_size=7,
        ),
        st.integers(min_value=1, max_value=20),
    )
    def test_knapsack_solution_is_feasible_and_greedy_bounded(self, items, capacity):
        """The MILP optimum is feasible and at least as good as greedy."""
        model = Model()
        binaries = [model.add_binary(f"b{i}") for i in range(len(items))]
        model.add_constraint(
            LinExpr.sum(weight * b for (weight, _), b in zip(items, binaries)) <= capacity
        )
        model.set_objective(
            LinExpr.sum(value * b for (_, value), b in zip(items, binaries)), sense="max"
        )
        solution = model.solve()
        assert solution.status is SolveStatus.OPTIMAL

        chosen_weight = sum(
            weight for (weight, _), b in zip(items, binaries) if solution.value(b) > 0.5
        )
        assert chosen_weight <= capacity + 1e-6

        # Greedy by value density never beats the exact optimum.
        order = sorted(
            range(len(items)), key=lambda i: items[i][1] / items[i][0], reverse=True
        )
        remaining, greedy_value = capacity, 0
        for index in order:
            weight, value = items[index]
            if weight <= remaining:
                remaining -= weight
                greedy_value += value
        assert solution.objective >= greedy_value - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=5).filter(
            lambda rows: all(abs(a) + abs(b) > 0.1 for a, b in rows)
        )
    )
    def test_backends_agree_on_random_lps(self, rows):
        """Both backends return the same optimum for random bounded LPs."""
        objectives = []
        for backend in ("highs", "branch-and-bound"):
            model = Model()
            x = model.add_continuous("x", lb=-10, ub=10)
            y = model.add_continuous("y", lb=-10, ub=10)
            for index, (a, b) in enumerate(rows):
                model.add_constraint(a * x + b * y <= 25.0, name=f"row{index}")
            model.set_objective(x + y, sense="max")
            solution = model.solve(backend=backend)
            assert solution.status is SolveStatus.OPTIMAL
            objectives.append(solution.objective)
        assert math.isclose(objectives[0], objectives[1], rel_tol=1e-6, abs_tol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=40), st.integers(min_value=1, max_value=40))
    def test_integer_rounding_invariant(self, lower, span):
        """An integer variable maximised under x <= bound lands on floor(bound)."""
        model = Model()
        n = model.add_integer("n", lb=0, ub=100)
        bound = lower + span / 3.0
        model.add_constraint(n <= bound)
        model.set_objective(n, sense="max")
        solution = model.solve()
        assert solution.value(n) == math.floor(bound + 1e-9)
