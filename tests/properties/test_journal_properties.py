"""Property tests of the durable job journal.

The invariant under test is the acceptance bar of the robustness layer:
whatever interleaving of concurrent appends and size-triggered rotations
the journal goes through — and however rudely the process dies
afterwards (a rotation abandoned mid-flight, a torn trailing append) —
replay never loses a settled record and never resurrects a wrong state.
"""

import json
import tempfile
import threading
from functools import lru_cache
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.runner import LayoutJob
from repro.service import JobQueue, job_to_document
from tests.conftest import build_tiny_netlist


@lru_cache(maxsize=None)
def _base_document(tag):
    return json.dumps(
        job_to_document(
            LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=f"prop{tag}")
        )
    )


def document(tag):
    return json.loads(_base_document(tag))


def run_workload(root, n_jobs, settle_mask, max_journal_bytes, threads=3):
    """Submit (and partly settle) jobs from several threads; return keys."""
    queue = JobQueue(root, fsync=False, max_journal_bytes=max_journal_bytes)
    keys = [None] * n_jobs
    indices = list(range(n_jobs))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                if not indices:
                    return
                index = indices.pop()
            record, _ = queue.submit(document(index))
            keys[index] = record.key
            if settle_mask[index]:
                queue.mark_running(record.key)
                queue.settle(record.key, "done", summary={"i": index})

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return queue, keys


class TestRotationDurability:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_crash_after_racing_rotations_loses_no_settled_record(self, data):
        n_jobs = data.draw(st.integers(min_value=2, max_value=8), label="n_jobs")
        settle_mask = data.draw(
            st.lists(st.booleans(), min_size=n_jobs, max_size=n_jobs),
            label="settle_mask",
        )
        # A tiny ceiling forces a rotation on nearly every append, racing
        # the other writer threads; a huge one means no rotation at all.
        max_bytes = data.draw(
            st.sampled_from([400, 4_000, 50_000_000]), label="max_journal_bytes"
        )
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "q"
            queue, keys = run_workload(root, n_jobs, settle_mask, max_bytes)

            # Now the crash: a rotation abandoned mid-flight (staging file
            # present, os.replace never ran) plus a torn trailing append.
            (root / ".journal-99999-dead.tmp").write_text(
                '{"op": "record", "rec', encoding="utf-8"
            )
            with queue.journal_path.open("a", encoding="utf-8") as handle:
                handle.write('{"op": "settle", "key": "feedface')

            replayed = JobQueue(root, fsync=False)
            states = {record.key: record.state for record in replayed.records()}
            for index, key in enumerate(keys):
                assert key in states  # no submitted job is ever lost
                if settle_mask[index]:
                    assert states[key] == "done"
                else:
                    assert states[key] == "queued"
            assert replayed.dropped_lines == 1  # the torn line, nothing else
            assert not list(root.glob(".journal-*.tmp"))  # staging swept

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_compaction_is_a_faithful_snapshot(self, data):
        n_jobs = data.draw(st.integers(min_value=1, max_value=8), label="n_jobs")
        settle_mask = data.draw(
            st.lists(st.booleans(), min_size=n_jobs, max_size=n_jobs),
            label="settle_mask",
        )
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "q"
            queue, _ = run_workload(root, n_jobs, settle_mask, 50_000_000)
            before = {record.key: record.state for record in queue.records()}
            queue.compact()
            after_compact = {
                record.key: record.state for record in queue.records()
            }
            replayed = JobQueue(root, fsync=False)
            after_replay = {
                record.key: record.state for record in replayed.records()
            }
            assert before == after_compact == after_replay
