"""Property-based tests for circuit serialisation and layout invariants."""

from hypothesis import given, settings, strategies as st

from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_capacitor,
    make_rf_pad,
    make_transistor,
    netlist_from_dict,
    netlist_to_dict,
)
from repro.layout import Layout, Placement, RoutedMicrostrip, layout_from_dict, layout_to_dict
from repro.geometry import ManhattanPath, Point

lengths = st.floats(min_value=30.0, max_value=900.0)
sizes = st.floats(min_value=20.0, max_value=80.0)


@st.composite
def netlists(draw):
    """Random small netlists: a pad-to-pad chain through 1-3 devices."""
    num_middle = draw(st.integers(min_value=1, max_value=3))
    devices = [make_rf_pad("P_IN"), make_rf_pad("P_OUT")]
    for index in range(num_middle):
        if draw(st.booleans()):
            devices.append(make_transistor(f"M{index}", width=draw(sizes), height=draw(sizes)))
        else:
            devices.append(make_capacitor(f"C{index}", width=draw(sizes), height=draw(sizes)))

    middle_names = [device.name for device in devices[2:]]
    chain = ["P_IN"] + middle_names + ["P_OUT"]
    nets = []
    for index, (first, second) in enumerate(zip(chain, chain[1:])):
        first_pin = "SIG" if first.startswith("P_") else sorted(
            d for d in devices if d.name == first
        )[0].pin_names()[0]
        second_pin = "SIG" if second.startswith("P_") else sorted(
            d for d in devices if d.name == second
        )[0].pin_names()[0]
        nets.append(
            MicrostripNet(
                f"net{index}",
                Terminal(first, first_pin),
                Terminal(second, second_pin),
                target_length=draw(lengths),
            )
        )
    area = LayoutArea(draw(st.floats(min_value=500, max_value=1000)),
                      draw(st.floats(min_value=400, max_value=900)))
    return Netlist(f"random{num_middle}", devices, nets, area)


class TestNetlistRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(netlists())
    def test_json_round_trip_preserves_structure(self, netlist):
        rebuilt = netlist_from_dict(netlist_to_dict(netlist))
        assert rebuilt.device_names == netlist.device_names
        assert rebuilt.microstrip_names == netlist.microstrip_names
        for name in netlist.microstrip_names:
            assert rebuilt.microstrip(name).target_length == netlist.microstrip(name).target_length
        assert rebuilt.area.as_tuple() == netlist.area.as_tuple()

    @settings(max_examples=30, deadline=None)
    @given(netlists())
    def test_total_length_is_sum_of_targets(self, netlist):
        assert netlist.total_target_length() == sum(
            net.target_length for net in netlist.microstrips
        )


class TestLayoutRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(netlists())
    def test_layout_json_round_trip(self, netlist):
        layout = Layout(netlist)
        spacing = netlist.area.width / (netlist.num_devices + 1)
        for index, device in enumerate(netlist.devices):
            layout.set_placement(
                Placement(device.name, Point(spacing * (index + 1), netlist.area.height / 2))
            )
        for index, net in enumerate(netlist.microstrips):
            start, end = layout.terminal_positions(net)
            mid = Point(end.x, start.y)
            layout.set_route(
                RoutedMicrostrip(net.name, ManhattanPath([start, mid, end], width=10.0))
            )
        rebuilt = layout_from_dict(layout_to_dict(layout))
        assert rebuilt.is_complete
        for net in netlist.microstrips:
            assert rebuilt.route(net.name).geometric_length == (
                layout.route(net.name).geometric_length
            )
        for device in netlist.devices:
            assert rebuilt.placement(device.name).center == layout.placement(device.name).center
