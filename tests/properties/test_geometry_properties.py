"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.geometry import ManhattanPath, Point, Rect, Segment, serpentine_path
from repro.geometry.overlap import overlap_extents

coordinates = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=0.1, max_value=200.0)


@st.composite
def points(draw):
    return Point(draw(coordinates), draw(coordinates))


@st.composite
def rects(draw):
    center = draw(points())
    return Rect.from_center(center, draw(positive), draw(positive))


@st.composite
def manhattan_paths(draw):
    """Random rectilinear paths of 2-8 points."""
    start = draw(points())
    steps = draw(st.lists(st.tuples(st.booleans(), coordinates), min_size=1, max_size=7))
    pts = [start]
    for horizontal, delta in steps:
        previous = pts[-1]
        if horizontal:
            pts.append(Point(previous.x + delta, previous.y))
        else:
            pts.append(Point(previous.x, previous.y + delta))
    return ManhattanPath(pts)


class TestPointProperties:
    @given(points(), points())
    def test_manhattan_dominates_euclidean(self, a, b):
        assert a.manhattan_distance(b) >= a.euclidean_distance(b) - 1e-9

    @given(points(), st.integers(min_value=0, max_value=7))
    def test_rotation_preserves_origin_distance(self, point, turns):
        rotated = point.rotated(turns)
        origin = Point(0.0, 0.0)
        assert math.isclose(
            rotated.euclidean_distance(origin),
            point.euclidean_distance(origin),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(points())
    def test_four_quarter_turns_identity(self, point):
        assert point.rotated(4).is_close(point)


class TestRectProperties:
    @given(rects(), st.floats(min_value=0.0, max_value=50.0))
    def test_expansion_grows_area(self, rect, margin):
        expanded = rect.expanded(margin)
        assert expanded.area >= rect.area
        assert expanded.contains_rect(rect)

    @given(rects(), rects())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert math.isclose(a.overlap_area(b), b.overlap_area(a), abs_tol=1e-6)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains_rect(common, tolerance=1e-6)
            assert b.contains_rect(common, tolerance=1e-6)

    @given(rects(), rects())
    def test_overlap_extents_match_intersection_area(self, a, b):
        ox, oy = overlap_extents(a, b)
        assert math.isclose(ox * oy, a.overlap_area(b), rel_tol=1e-9, abs_tol=1e-6)

    @given(rects())
    def test_bounding_of_self_is_self(self, rect):
        assert Rect.bounding([rect]) == rect


class TestPathProperties:
    @given(manhattan_paths())
    def test_length_is_sum_of_segments(self, path):
        assert math.isclose(
            path.geometric_length,
            sum(s.length for s in path.segments()),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(manhattan_paths())
    def test_bends_bounded_by_segments(self, path):
        assert 0 <= path.bend_count <= max(0, len(path.segments(drop_degenerate=True)) - 1)

    @given(manhattan_paths())
    def test_simplification_preserves_length_and_bends(self, path):
        simplified = path.simplified()
        assert math.isclose(
            simplified.geometric_length, path.geometric_length, rel_tol=1e-9, abs_tol=1e-6
        )
        assert simplified.bend_count <= path.bend_count
        assert simplified.start.is_close(path.start)
        assert simplified.end.is_close(path.end)

    @given(manhattan_paths())
    def test_reversal_preserves_metrics(self, path):
        reversed_path = path.reversed()
        assert math.isclose(
            reversed_path.geometric_length, path.geometric_length, rel_tol=1e-9
        )
        assert reversed_path.bend_count == path.bend_count

    @given(manhattan_paths(), st.floats(min_value=-10.0, max_value=10.0))
    def test_equivalent_length_linear_in_delta(self, path, delta):
        expected = path.geometric_length + path.bend_count * delta
        assert math.isclose(path.equivalent_length(delta), expected, rel_tol=1e-9, abs_tol=1e-6)


class TestSerpentineProperties:
    @settings(max_examples=40)
    @given(points(), points(), st.floats(min_value=1.0, max_value=800.0))
    def test_serpentine_hits_requested_length(self, start, end, extra):
        assume(not start.is_close(end))
        direct = start.manhattan_distance(end)
        assume(direct > 1.0)
        target = direct + extra
        path = serpentine_path(start, end, target)
        assert path.start.is_close(start, tolerance=1e-6)
        assert path.end.is_close(end, tolerance=1e-6)
        assert math.isclose(path.geometric_length, target, rel_tol=0.02, abs_tol=1.0)
