"""Unit tests for technology / design-rule descriptions."""

import pytest

from repro.errors import TechnologyError
from repro.tech import CMOS65, CMOS90, Technology, default_technology


class TestDefaults:
    def test_default_is_cmos90(self):
        assert default_technology() is CMOS90
        assert CMOS90.name == "cmos90"

    def test_paper_quoted_values(self):
        # The paper quotes t ~ 5 um and a 2t spacing rule for 90 nm CMOS.
        assert CMOS90.ground_plane_distance == pytest.approx(5.0)
        assert CMOS90.spacing == pytest.approx(10.0)
        assert CMOS90.clearance == pytest.approx(5.0)

    def test_cmos65_variant_differs(self):
        assert CMOS65.ground_plane_distance < CMOS90.ground_plane_distance
        assert CMOS65.spacing == pytest.approx(8.0)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("ground_plane_distance", 0.0),
            ("microstrip_width", -1.0),
            ("spacing_factor", 0.0),
            ("min_segment_length", -0.1),
            ("substrate_permittivity", 0.5),
            ("metal_conductivity", 0.0),
            ("metal_thickness", -2.0),
            ("loss_tangent", -0.01),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(TechnologyError):
            Technology(**{field: value})

    def test_equivalent_length(self):
        assert CMOS90.equivalent_length(100.0, 2) == pytest.approx(
            100.0 + 2 * CMOS90.bend_compensation
        )

    def test_equivalent_length_rejects_negative_bends(self):
        with pytest.raises(TechnologyError):
            CMOS90.equivalent_length(100.0, -1)


class TestSerialisation:
    def test_round_trip(self):
        data = CMOS90.as_dict()
        rebuilt = Technology.from_dict(data)
        assert rebuilt == CMOS90

    def test_unknown_field_rejected(self):
        data = CMOS90.as_dict()
        data["oxide_colour"] = "blue"
        with pytest.raises(TechnologyError):
            Technology.from_dict(data)

    def test_with_updates(self):
        custom = CMOS90.with_updates(microstrip_width=12.0)
        assert custom.microstrip_width == 12.0
        assert CMOS90.microstrip_width == 10.0
