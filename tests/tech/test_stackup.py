"""Unit tests for the metal stack-up description."""

import pytest

from repro.errors import TechnologyError
from repro.tech import CMOS90, MetalLayer, StackUp, default_stackup


class TestMetalLayer:
    def test_valid_layer(self):
        layer = MetalLayer("M1", 0.3, 0.0, is_ground_plane=True)
        assert layer.name == "M1"

    def test_invalid_thickness(self):
        with pytest.raises(TechnologyError):
            MetalLayer("M1", 0.0, 0.0)

    def test_negative_height(self):
        with pytest.raises(TechnologyError):
            MetalLayer("M1", 0.3, -1.0)


class TestStackUp:
    def test_default_stackup_height_matches_technology(self):
        stack = default_stackup(CMOS90)
        assert stack.microstrip_height == pytest.approx(CMOS90.ground_plane_distance)

    def test_layers_sorted_bottom_up(self):
        stack = default_stackup()
        heights = [layer.height_above_substrate for layer in stack.layers]
        assert heights == sorted(heights)
        assert stack.layer_names()[0] == "M1"
        assert stack.layer_names()[-1] == "TM"

    def test_requires_exactly_one_ground_plane(self):
        with pytest.raises(TechnologyError):
            StackUp([MetalLayer("TM", 3.0, 5.0, is_microstrip_layer=True)])

    def test_requires_exactly_one_microstrip_layer(self):
        with pytest.raises(TechnologyError):
            StackUp([MetalLayer("M1", 0.3, 0.0, is_ground_plane=True)])

    def test_microstrip_below_ground_rejected(self):
        layers = [
            MetalLayer("TM", 1.0, 0.0, is_microstrip_layer=True),
            MetalLayer("M1", 0.3, 5.0, is_ground_plane=True),
        ]
        stack = StackUp(layers)
        with pytest.raises(TechnologyError):
            _ = stack.microstrip_height

    def test_as_dict_round_trip_fields(self):
        stack = default_stackup()
        data = stack.as_dict()
        assert data["dielectric_permittivity"] == stack.dielectric_permittivity
        assert len(data["layers"]) == len(stack.layers)

    def test_invalid_permittivity(self):
        layers = [
            MetalLayer("M1", 0.3, 0.0, is_ground_plane=True),
            MetalLayer("TM", 1.0, 5.0, is_microstrip_layer=True),
        ]
        with pytest.raises(TechnologyError):
            StackUp(layers, dielectric_permittivity=0.5)
