"""End-to-end integration tests across subsystem boundaries."""

import pytest

pytestmark = pytest.mark.slow

from repro.circuit import load_netlist, save_netlist
from repro.layout import (
    load_layout,
    run_drc,
    save_layout,
    compute_metrics,
    layout_to_svg,
    smooth_layout,
)
from repro.rf import AmplifierModel, SignalChain, default_frequency_sweep


class TestLayoutPersistenceRoundTrip:
    def test_solved_layout_survives_serialisation(self, exact_tiny_result, tmp_path):
        """Solve -> save -> load -> re-check: the layout stays DRC-clean."""
        path = save_layout(exact_tiny_result.layout, tmp_path / "tiny_layout.json")
        reloaded = load_layout(path)
        assert reloaded.is_complete
        report = run_drc(reloaded)
        assert report.is_clean, report.summary()
        original = compute_metrics(exact_tiny_result.layout)
        recomputed = compute_metrics(reloaded)
        assert recomputed.total_bend_count == original.total_bend_count
        assert recomputed.max_abs_length_error == pytest.approx(
            original.max_abs_length_error, abs=1e-6
        )

    def test_netlist_round_trip_then_flow_inputs_match(
        self, session_tiny_netlist, tmp_path
    ):
        path = save_netlist(session_tiny_netlist, tmp_path / "tiny.json")
        reloaded = load_netlist(path)
        assert reloaded.summary() == session_tiny_netlist.summary()


class TestRenderingAndSmoothing:
    def test_solved_layout_renders_and_smooths(self, exact_tiny_result):
        svg = layout_to_svg(exact_tiny_result.layout)
        assert svg.count("<rect") >= 1 + exact_tiny_result.layout.netlist.num_devices
        smoothed = smooth_layout(exact_tiny_result.layout)
        for route in exact_tiny_result.layout.routes:
            # Smoothing shortens exactly when there are bends.
            change = smoothed[route.net_name].length - route.geometric_length
            if route.bend_count:
                assert change < 0
            else:
                assert change == pytest.approx(0.0, abs=1e-9)


class TestLayoutToRf:
    def test_exact_layout_matches_designed_response(
        self, exact_tiny_result, session_tiny_netlist
    ):
        """A layout with exact lengths barely perturbs the RF response."""
        chain = SignalChain.from_shorthand(
            "tiny",
            [
                ("device", "P_IN"),
                ("line", "ms_in"),
                ("device", "M1"),
                ("line", "ms_out"),
                ("device", "P_OUT"),
            ],
        )
        model = AmplifierModel(session_tiny_netlist, chain)
        frequencies = default_frequency_sweep(94.0, points=61)
        designed = model.simulate(frequencies)
        laid_out = model.simulate(frequencies, exact_tiny_result.layout)
        f0 = 94.0e9
        # Exact lengths: only the (small) bend discontinuities differ.
        assert abs(laid_out.gain_db(f0) - designed.gain_db(f0)) < 0.5


class TestProgressiveFlowArtifacts:
    def test_snapshots_exportable(self, pilp_small_result, tmp_path):
        from repro.core import PILPLayoutGenerator
        from repro.layout import save_phase_snapshots

        generator = PILPLayoutGenerator()
        snapshots = generator.snapshots(pilp_small_result)
        assert "phase1" in snapshots and "final" in snapshots
        paths = save_phase_snapshots(snapshots, tmp_path / "snaps")
        assert len(paths) == len(snapshots)
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_final_layout_persists(self, pilp_small_result, tmp_path):
        path = save_layout(pilp_small_result.layout, tmp_path / "small5.json")
        reloaded = load_layout(path)
        assert reloaded.is_complete
        assert run_drc(reloaded).is_clean
