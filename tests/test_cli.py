"""Tests of the command-line interface (fast paths only)."""

import json

import pytest

from repro.circuit import save_netlist
from repro.cli import build_parser, main
from tests.conftest import build_tiny_netlist


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "rfic-layout" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_generate_flow_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["generate", "x.json", "--flow", "magic"])


class TestCircuitsCommand:
    def test_lists_all_circuits(self, capsys):
        assert main(["circuits"]) == 0
        output = capsys.readouterr().out
        for name in ("lna94", "buffer60", "lna60"):
            assert name in output


class TestGenerateCommand:
    def test_unknown_netlist_argument(self):
        with pytest.raises(SystemExit):
            main(["generate", "/nonexistent/netlist.json"])

    def test_manual_flow_on_netlist_file(self, tmp_path, capsys):
        netlist_path = save_netlist(build_tiny_netlist(), tmp_path / "tiny.json")
        output_path = tmp_path / "layout.json"
        svg_path = tmp_path / "layout.svg"
        code = main(
            [
                "generate",
                str(netlist_path),
                "--flow",
                "manual",
                "--output",
                str(output_path),
                "--svg",
                str(svg_path),
            ]
        )
        assert code == 0
        assert output_path.exists()
        assert svg_path.exists()
        document = json.loads(output_path.read_text())
        assert document["circuit"] == "tiny"
        printed = capsys.readouterr().out
        assert "manual flow result" in printed
