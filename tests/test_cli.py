"""Tests of the command-line interface (fast paths only)."""

import json

import pytest

from repro.circuit import save_netlist
from repro.cli import build_parser, main
from tests.conftest import build_tiny_netlist


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "rfic-layout" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_generate_flow_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["generate", "x.json", "--flow", "magic"])


class TestServiceCommands:
    def test_help_epilog_documents_service_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        for token in ("serve", "submit", "status", "Server-Sent-Events", "journal"):
            assert token in output

    def test_submit_requires_a_netlist(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["submit", "nosuch", "--service", "http://127.0.0.1:1"])

    def test_submit_unreachable_service_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["submit", "lna60", "--flow", "manual", "--service", "http://127.0.0.1:1"])

    def test_status_unreachable_service_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["status", "--service", "http://127.0.0.1:1"])

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8080
        assert args.data_dir == ".rfic-service"
        assert args.dispatchers == 2
        assert not args.inline

    def test_serve_slo_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.slo_availability is None
        assert args.slo_latency_p95 is None
        assert args.slo_window == 300.0
        args = build_parser().parse_args(
            ["serve", "--slo-availability", "0.99",
             "--slo-latency-p95", "30", "--slo-window", "120"]
        )
        assert args.slo_availability == 0.99
        assert args.slo_latency_p95 == 30.0
        assert args.slo_window == 120.0


class TestBenchCommand:
    def test_diff_parser_defaults(self):
        args = build_parser().parse_args(["bench", "diff", "a.json", "b.json"])
        assert args.baseline == "a.json"
        assert args.current == "b.json"
        assert not args.gate
        assert not args.json
        assert args.report is None
        assert args.latency_warn == 2.0
        assert args.latency_fail == 10.0
        assert args.throughput_fail == 10.0

    def test_diff_requires_two_snapshots(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "diff", "only-one.json"])

    def test_bench_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bad_thresholds_exit_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="latency_warn_ratio"):
            main([
                "bench", "diff", "a.json", "b.json",
                "--latency-warn", "5", "--latency-fail", "2",
            ])


class TestCircuitsCommand:
    def test_lists_all_circuits(self, capsys):
        assert main(["circuits"]) == 0
        output = capsys.readouterr().out
        for name in ("lna94", "buffer60", "lna60"):
            assert name in output


class TestGenerateCommand:
    def test_unknown_netlist_argument(self):
        with pytest.raises(SystemExit):
            main(["generate", "/nonexistent/netlist.json"])

    def test_manual_flow_on_netlist_file(self, tmp_path, capsys):
        netlist_path = save_netlist(build_tiny_netlist(), tmp_path / "tiny.json")
        output_path = tmp_path / "layout.json"
        svg_path = tmp_path / "layout.svg"
        code = main(
            [
                "generate",
                str(netlist_path),
                "--flow",
                "manual",
                "--output",
                str(output_path),
                "--svg",
                str(svg_path),
            ]
        )
        assert code == 0
        assert output_path.exists()
        assert svg_path.exists()
        document = json.loads(output_path.read_text())
        assert document["circuit"] == "tiny"
        printed = capsys.readouterr().out
        assert "manual flow result" in printed


class TestGenerateSeed:
    def test_seed_on_benchmark_circuit(self, tmp_path, capsys):
        output_path = tmp_path / "seeded.json"
        code = main(
            [
                "generate", "lna60", "--flow", "manual",
                "--seed", "7", "--output", str(output_path),
            ]
        )
        assert code == 0
        seeded = json.loads(output_path.read_text())

        unseeded_path = tmp_path / "unseeded.json"
        main(["generate", "lna60", "--flow", "manual", "--output", str(unseeded_path)])
        unseeded = json.loads(unseeded_path.read_text())
        capsys.readouterr()

        seeded_lengths = sorted(
            net["target_length"] for net in seeded["netlist"]["microstrips"]
        )
        unseeded_lengths = sorted(
            net["target_length"] for net in unseeded["netlist"]["microstrips"]
        )
        assert seeded_lengths != unseeded_lengths


class TestBatchCommand:
    def test_batch_parser_rejects_bad_flow(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["batch", "--flow", "magic"])

    def test_unknown_circuit_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "nosuch", "--cache-dir", str(tmp_path)])

    def test_batch_cold_then_cached(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = [
            "batch", "lna60", "--flow", "manual",
            "--cache-dir", str(cache_dir), "--workers", "0",
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "completed" in cold
        assert "0 hit(s)" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "cached" in warm
        assert "1 hit(s)" in warm

    def test_batch_json_output(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        code = main(
            [
                "batch", "lna60", "--flow", "manual", "--no-cache",
                "--workers", "0", "--quiet", "--json", str(rows_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        document = json.loads(rows_path.read_text())
        rows = document["rows"]
        assert len(rows) == 1
        assert rows[0]["status"] == "completed"
        assert rows[0]["job"] == "lna60[0]:manual"
        assert document["cache"] is None  # --no-cache => no footer counters
        assert document["failures"] == 0

    def test_batch_json_cache_footer_has_raw_counts(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        args = [
            "batch", "lna60", "--flow", "manual",
            "--cache-dir", str(tmp_path / "cache"),
            "--workers", "0", "--quiet", "--json", str(rows_path),
        ]
        assert main(args) == 0
        assert main(args) == 0  # second run hits the cache
        capsys.readouterr()
        cache = json.loads(rows_path.read_text())["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 0
        assert cache["lookups"] == 1
        assert cache["stores"] == 0
        assert cache["hit_rate"] == 1.0

    def test_batch_all_areas_adds_jobs(self, tmp_path, capsys):
        code = main(
            [
                "batch", "lna60", "--flow", "manual", "--all-areas",
                "--no-cache", "--workers", "0", "--quiet",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "lna60[0]:manual" in output
        assert "lna60[1]:manual" in output

    def test_timeout_makes_batch_exit_nonzero(self, capsys):
        code = main(
            [
                "batch", "lna60", "--flow", "manual", "--no-cache",
                "--workers", "1", "--timeout", "0.01", "--quiet",
            ]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "timeout" in output
        assert "failed or timed out" in output

    def test_default_cancels_rest_after_failure(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        code = main(
            [
                "batch", "lna60", "--flow", "manual", "--all-areas", "--no-cache",
                "--workers", "1", "--timeout", "0.01", "--quiet",
                "--json", str(rows_path),
            ]
        )
        assert code == 1
        capsys.readouterr()
        document = json.loads(rows_path.read_text())
        statuses = [row["status"] for row in document["rows"]]
        assert statuses[0] == "timeout"
        assert "cancelled" in statuses  # the rest of the batch was cut short
        assert document["failures"] == 1

    def test_keep_going_runs_everything_but_still_fails(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        code = main(
            [
                "batch", "lna60", "--flow", "manual", "--all-areas", "--no-cache",
                "--workers", "1", "--timeout", "0.01", "--quiet", "--keep-going",
                "--json", str(rows_path),
            ]
        )
        assert code == 1
        capsys.readouterr()
        document = json.loads(rows_path.read_text())
        statuses = [row["status"] for row in document["rows"]]
        assert statuses == ["timeout", "timeout"]  # nothing was cancelled
        assert document["failures"] == 2
        assert document["keep_going"] is True

    def test_batch_sweep_generates_workload(self, tmp_path, capsys):
        code = main(
            [
                "batch", "--flow", "manual", "--no-cache", "--workers", "0",
                "--quiet", "--sweep-stages", "1", "--sweep-seeds", "1,2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "amp1s_" in output
        assert "running 2 job(s)" in output
