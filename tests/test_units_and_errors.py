"""Unit tests for the unit-conversion helpers and the exception hierarchy."""

import math

import pytest

from repro import errors, units


class TestUnits:
    def test_length_conversions_round_trip(self):
        assert units.meters_to_microns(units.microns_to_meters(123.4)) == pytest.approx(123.4)
        assert units.mm_to_microns(1.5) == pytest.approx(1500.0)

    def test_frequency_conversions(self):
        assert units.ghz_to_hz(94.0) == pytest.approx(94.0e9)
        assert units.hz_to_ghz(60.0e9) == pytest.approx(60.0)

    def test_db_and_inverse(self):
        assert units.db(10.0) == pytest.approx(20.0)
        assert units.from_db(units.db(0.25)) == pytest.approx(0.25)
        assert units.db(0.0) == float("-inf")

    def test_db_power(self):
        assert units.db_power(100.0) == pytest.approx(20.0)
        assert units.db_power(0.0) == float("-inf")

    def test_wavelength(self):
        free_space = units.wavelength(1.0e9)
        assert free_space == pytest.approx(units.SPEED_OF_LIGHT / 1.0e9)
        slowed = units.wavelength(1.0e9, eps_eff=4.0)
        assert slowed == pytest.approx(free_space / 2.0)

    def test_wavelength_validation(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)
        with pytest.raises(ValueError):
            units.wavelength(1.0e9, eps_eff=0.0)

    def test_free_space_impedance(self):
        assert units.ETA_0 == pytest.approx(376.73, abs=0.01)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.ModelError,
            errors.SolverError,
            errors.InfeasibleModelError,
            errors.GeometryError,
            errors.NetlistError,
            errors.TechnologyError,
            errors.LayoutError,
            errors.DRCError,
            errors.RoutingError,
            errors.PlacementError,
            errors.RFError,
            errors.ExperimentError,
            errors.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exception("boom")

    def test_infeasible_is_a_solver_error(self):
        assert issubclass(errors.InfeasibleModelError, errors.SolverError)

    def test_drc_error_is_a_layout_error(self):
        assert issubclass(errors.DRCError, errors.LayoutError)
