"""Unit tests for layout metrics (the Table 1 quantities)."""

import pytest

from repro.errors import LayoutError
from repro.geometry import ManhattanPath, Point
from repro.layout import Layout, RoutedMicrostrip, compare_metrics, compute_metrics


class TestComputeMetrics:
    def test_bend_and_length_statistics(self, hand_layout):
        metrics = compute_metrics(hand_layout)
        assert metrics.circuit_name == "tiny"
        assert metrics.num_microstrips == 2
        assert metrics.max_bend_count == 1
        assert metrics.total_bend_count == 1
        assert metrics.total_wirelength > 0
        assert metrics.max_abs_length_error > 0
        assert set(metrics.per_net) == {"ms_in", "ms_out"}

    def test_area_fields(self, hand_layout):
        metrics = compute_metrics(hand_layout)
        assert metrics.area_label == "400x300"
        assert metrics.area_um2 == pytest.approx(120000.0)

    def test_mean_bend_count(self, hand_layout):
        metrics = compute_metrics(hand_layout)
        # One bend spread over the two routed microstrips.
        assert metrics.mean_bend_count == pytest.approx(0.5)

    def test_as_dict_columns(self, hand_layout):
        data = compute_metrics(hand_layout).as_dict()
        assert data["max_bends"] == 1
        assert data["total_bends"] == 1
        assert data["area"] == "400x300"

    def test_partial_layout_allowed_by_default(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        metrics = compute_metrics(layout)
        assert metrics.total_bend_count == 0
        assert metrics.per_net == {}

    def test_partial_layout_rejected_when_required(self, tiny_netlist):
        with pytest.raises(LayoutError):
            compute_metrics(Layout(tiny_netlist), require_complete=True)

    def test_per_net_length_error_sign(self, hand_layout):
        metrics = compute_metrics(hand_layout)
        ms_in = metrics.per_net["ms_in"]
        # The direct route is much shorter than the 250 um target.
        assert ms_in.length_error < 0
        assert ms_in.relative_length_error < 0


class TestCompareMetrics:
    def test_reduction_computation(self, hand_layout):
        baseline = compute_metrics(hand_layout)
        improved_layout = hand_layout.copy()
        # Replace one L-route with a straight route to remove a bend.
        start, end = improved_layout.terminal_positions("ms_out")
        improved_layout.set_route(
            RoutedMicrostrip(
                "ms_out", ManhattanPath([start, Point(end.x, start.y), end], width=10.0)
            )
        )
        candidate = compute_metrics(improved_layout)
        comparison = compare_metrics(baseline, candidate)
        assert comparison["baseline_total_bends"] == 1
        assert comparison["candidate_total_bends"] <= 1
        assert comparison["circuit"] == "tiny"

    def test_different_circuits_rejected(self, hand_layout, small_netlist):
        baseline = compute_metrics(hand_layout)
        other = compute_metrics(Layout(small_netlist))
        with pytest.raises(LayoutError):
            compare_metrics(baseline, other)

    def test_zero_baseline_reduction_is_none(self, hand_layout):
        metrics = compute_metrics(hand_layout)
        zero = compute_metrics(Layout(hand_layout.netlist))
        comparison = compare_metrics(zero, metrics)
        assert comparison["total_bend_reduction"] is None
