"""Unit tests for bend smoothing and the SVG / JSON exporters."""

import json
import math

import pytest

from repro.geometry import ManhattanPath, Point
from repro.layout import (
    Layout,
    RoutedMicrostrip,
    default_cut_length,
    layout_from_dict,
    layout_to_dict,
    layout_to_svg,
    load_layout,
    save_layout,
    save_phase_snapshots,
    save_svg,
    smooth_layout,
    smooth_route,
    smoothing_length_change,
)


def l_route(width=10.0):
    return RoutedMicrostrip(
        "ms_in", ManhattanPath([Point(0, 0), Point(100, 0), Point(100, 60)], width)
    )


class TestSmoothing:
    def test_default_cut_from_negative_delta(self):
        cut = default_cut_length(delta=-4.0, width=10.0)
        assert cut == pytest.approx(4.0 / (2.0 - math.sqrt(2.0)))

    def test_default_cut_fallback_for_positive_delta(self):
        assert default_cut_length(delta=2.0, width=10.0) == pytest.approx(10.0)

    def test_smoothed_route_is_shorter(self):
        route = l_route()
        smoothed = smooth_route(route, delta=-4.0)
        assert smoothed.length < route.geometric_length
        assert smoothed.diagonal_count == 1

    def test_length_change_matches_geometric_delta(self):
        route = l_route()
        change = smoothing_length_change(route, delta=-4.0)
        # One smoothed bend shortens the path by cut * (2 - sqrt(2)) = |delta|.
        assert change == pytest.approx(-4.0, abs=1e-6)

    def test_straight_route_unchanged(self):
        route = RoutedMicrostrip(
            "ms_in", ManhattanPath([Point(0, 0), Point(100, 0)], width=10.0)
        )
        smoothed = smooth_route(route, delta=-4.0)
        assert smoothed.length == pytest.approx(100.0)
        assert smoothed.diagonal_count == 0

    def test_smooth_layout_covers_all_routes(self, hand_layout):
        smoothed = smooth_layout(hand_layout)
        assert set(smoothed) == {"ms_in", "ms_out"}


class TestSvgExport:
    def test_svg_contains_devices_and_routes(self, hand_layout):
        svg = layout_to_svg(hand_layout)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "M1" in svg
        assert "polyline" in svg

    def test_svg_scaling_changes_size(self, hand_layout):
        small = layout_to_svg(hand_layout, scale=1.0)
        large = layout_to_svg(hand_layout, scale=2.0)
        assert 'width="440.0"' in small
        assert 'width="880.0"' in large

    def test_save_svg(self, hand_layout, tmp_path):
        path = save_svg(hand_layout, tmp_path / "layout.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_save_phase_snapshots(self, hand_layout, tmp_path):
        paths = save_phase_snapshots(
            {"phase1": hand_layout, "final": hand_layout}, tmp_path / "snaps"
        )
        assert len(paths) == 2
        assert all(path.exists() for path in paths)

    def test_options_toggle_content(self, hand_layout):
        without_labels = layout_to_svg(hand_layout, show_labels=False, show_bends=False)
        assert "<text" not in without_labels
        assert "<circle" not in without_labels


class TestJsonExport:
    def test_dict_round_trip_with_embedded_netlist(self, hand_layout):
        data = layout_to_dict(hand_layout)
        rebuilt = layout_from_dict(data)
        assert rebuilt.is_complete
        assert rebuilt.netlist.name == "tiny"
        assert rebuilt.route("ms_in").geometric_length == pytest.approx(
            hand_layout.route("ms_in").geometric_length
        )

    def test_round_trip_without_embedded_netlist(self, hand_layout, tiny_netlist):
        data = layout_to_dict(hand_layout, embed_netlist=False)
        rebuilt = layout_from_dict(data, netlist=tiny_netlist)
        assert rebuilt.is_complete

    def test_missing_netlist_rejected(self, hand_layout):
        from repro.errors import LayoutError

        data = layout_to_dict(hand_layout, embed_netlist=False)
        with pytest.raises(LayoutError):
            layout_from_dict(data)

    def test_file_round_trip(self, hand_layout, tmp_path):
        path = save_layout(hand_layout, tmp_path / "layout.json")
        loaded = load_layout(path)
        assert loaded.placement("M1").center == hand_layout.placement("M1").center
        raw = json.loads(path.read_text())
        assert raw["circuit"] == "tiny"

    def test_metadata_preserved(self, hand_layout, tmp_path):
        hand_layout.metadata["flow"] = "hand"
        path = save_layout(hand_layout, tmp_path / "layout.json")
        assert load_layout(path).metadata["flow"] == "hand"


class TestExportersCreateParentDirectories:
    """Runner artifact paths like ``cache/ab/cd12/layout.json`` must just work."""

    def test_save_layout_creates_nested_directories(self, hand_layout, tmp_path):
        target = tmp_path / "cache" / "ab" / "cd1234" / "layout.json"
        assert not target.parent.exists()
        written = save_layout(hand_layout, target)
        assert written == target
        assert target.is_file()
        assert load_layout(target).is_complete

    def test_save_svg_creates_nested_directories(self, hand_layout, tmp_path):
        from repro.layout.export_svg import save_svg

        target = tmp_path / "artifacts" / "deep" / "layout.svg"
        assert not target.parent.exists()
        written = save_svg(hand_layout, target)
        assert written == target
        assert target.read_text().startswith("<svg")
