"""Unit tests for placements and routed microstrips."""

import pytest

from repro.errors import LayoutError
from repro.circuit import Rotation, make_transistor
from repro.geometry import ManhattanPath, Point
from repro.layout import Placement, RoutedMicrostrip


@pytest.fixture
def transistor():
    return make_transistor("M1", width=40.0, height=30.0)


class TestPlacement:
    def test_outline_and_pins(self, transistor):
        placement = Placement("M1", Point(100.0, 100.0))
        outline = placement.outline(transistor)
        assert outline.center == Point(100.0, 100.0)
        assert placement.pin_position(transistor, "G") == Point(80.0, 100.0)

    def test_rotated_outline(self, transistor):
        placement = Placement("M1", Point(100.0, 100.0), Rotation.R90)
        outline = placement.outline(transistor)
        assert outline.width == pytest.approx(30.0)
        assert outline.height == pytest.approx(40.0)

    def test_bounding_box_expansion(self, transistor):
        placement = Placement("M1", Point(100.0, 100.0))
        box = placement.bounding_box(transistor, clearance=5.0)
        assert box.width == pytest.approx(50.0)

    def test_wrong_device_rejected(self, transistor):
        placement = Placement("M2", Point(0.0, 0.0))
        with pytest.raises(LayoutError):
            placement.outline(transistor)

    def test_move_and_rotate_return_copies(self):
        placement = Placement("M1", Point(0.0, 0.0))
        moved = placement.moved_to(Point(5.0, 5.0))
        rotated = placement.rotated(Rotation.R180)
        translated = placement.translated(1.0, 2.0)
        assert placement.center == Point(0.0, 0.0)
        assert moved.center == Point(5.0, 5.0)
        assert rotated.rotation is Rotation.R180
        assert translated.center == Point(1.0, 2.0)

    def test_serialisation_round_trip(self):
        placement = Placement("M1", Point(12.5, 7.25), Rotation.R270)
        rebuilt = Placement.from_dict(placement.as_dict())
        assert rebuilt == placement

    def test_malformed_record(self):
        with pytest.raises(LayoutError):
            Placement.from_dict({"device": "M1"})


class TestRoutedMicrostrip:
    def make_route(self):
        path = ManhattanPath(
            [Point(0, 0), Point(100, 0), Point(100, 60)], width=10.0
        )
        return RoutedMicrostrip("ms1", path)

    def test_metrics(self):
        route = self.make_route()
        assert route.geometric_length == pytest.approx(160.0)
        assert route.bend_count == 1
        assert route.equivalent_length(-4.0) == pytest.approx(156.0)

    def test_segments_and_outlines(self):
        route = self.make_route()
        assert len(route.segments()) == 2
        assert len(route.outline_rects(clearance=5.0)) == 2

    def test_length_error(self):
        from repro.circuit import MicrostripNet, Terminal

        net = MicrostripNet("ms1", Terminal("A", "P"), Terminal("B", "P"), 150.0)
        route = self.make_route()
        assert route.length_error(net, delta=-4.0) == pytest.approx(6.0)

    def test_length_error_wrong_net_rejected(self):
        from repro.circuit import MicrostripNet, Terminal

        net = MicrostripNet("other", Terminal("A", "P"), Terminal("B", "P"), 150.0)
        with pytest.raises(LayoutError):
            self.make_route().length_error(net, delta=0.0)

    def test_simplified(self):
        path = ManhattanPath(
            [Point(0, 0), Point(50, 0), Point(100, 0), Point(100, 60)], width=10.0
        )
        route = RoutedMicrostrip("ms1", path).simplified()
        assert len(route.chain_points) == 3

    def test_serialisation_round_trip(self):
        route = self.make_route()
        rebuilt = RoutedMicrostrip.from_dict(route.as_dict())
        assert rebuilt.net_name == route.net_name
        assert rebuilt.geometric_length == pytest.approx(route.geometric_length)
        assert rebuilt.width == pytest.approx(10.0)

    def test_malformed_record(self):
        with pytest.raises(LayoutError):
            RoutedMicrostrip.from_dict({"net": "x"})
