"""Unit tests for the design-rule checker."""

import pytest

from repro.geometry import ManhattanPath, Point
from repro.layout import (
    DesignRuleChecker,
    Layout,
    Placement,
    RoutedMicrostrip,
    ViolationKind,
    run_drc,
)


class TestCleanLayout:
    def test_hand_layout_length_mismatch_only(self, hand_layout):
        # The hand layout is geometrically legal but its routes are direct
        # connections, so the required lengths are not met.
        report = run_drc(hand_layout)
        kinds = set(report.summary())
        assert kinds == {"length-mismatch"}

    def test_disable_length_check(self, hand_layout):
        report = DesignRuleChecker(check_lengths=False).check(hand_layout)
        assert report.is_clean

    def test_report_helpers(self, hand_layout):
        report = run_drc(hand_layout)
        assert report.count() == len(report.violations)
        assert report.count(ViolationKind.LENGTH_MISMATCH) == len(
            report.by_kind(ViolationKind.LENGTH_MISMATCH)
        )


class TestCompleteness:
    def test_missing_placement_and_route_reported(self, tiny_netlist):
        report = run_drc(Layout(tiny_netlist))
        assert report.count(ViolationKind.MISSING_PLACEMENT) == 3
        assert report.count(ViolationKind.MISSING_ROUTE) == 2


class TestGeometricChecks:
    def test_outside_area_detected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("M1", 395.0, 150.0)  # hangs over the right edge
        report = DesignRuleChecker(check_lengths=False).check(layout)
        assert any(
            violation.subject == "dev:M1"
            for violation in report.by_kind(ViolationKind.OUTSIDE_AREA)
        )

    def test_pad_off_boundary_detected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 200.0, 150.0)  # floating in the middle
        report = DesignRuleChecker(check_lengths=False).check(layout)
        assert report.count(ViolationKind.PAD_NOT_ON_BOUNDARY) == 1

    def test_pad_on_boundary_accepted(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 30.0, 150.0)  # left edge (pad is 60 um wide)
        report = DesignRuleChecker(check_lengths=False).check(layout)
        assert report.count(ViolationKind.PAD_NOT_ON_BOUNDARY) == 0

    def test_spacing_violation_between_devices(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("M1", 200.0, 150.0)
        # M1's right edge is at x = 220; a pad whose left edge sits at x = 225
        # leaves only 5 um of clearance and violates the 10 um rule.
        layout.place_device("P_OUT", 255.0, 150.0)
        report = DesignRuleChecker(check_lengths=False).check(layout)
        assert report.count(ViolationKind.SPACING) >= 1

    def test_crossing_detected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 35.0, 150.0)
        layout.place_device("P_OUT", 365.0, 150.0)
        layout.place_device("M1", 200.0, 40.0)
        # ms_in runs horizontally across the area; ms_out runs vertically
        # through it — an illegal crossing of two different nets.
        layout.set_route(
            RoutedMicrostrip(
                "ms_in",
                ManhattanPath([Point(35, 150), Point(365, 150)], width=10.0),
            )
        )
        layout.set_route(
            RoutedMicrostrip(
                "ms_out",
                ManhattanPath([Point(200, 47.5), Point(200, 290)], width=10.0),
            )
        )
        checker = DesignRuleChecker(check_lengths=False, check_spacing=False)
        report = checker.check(layout)
        assert report.count(ViolationKind.CROSSING) == 1

    def test_open_connection_detected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 35.0, 150.0)
        layout.place_device("P_OUT", 365.0, 150.0)
        layout.place_device("M1", 200.0, 150.0)
        # Route ends 40 um away from the gate pin.
        layout.set_route(
            RoutedMicrostrip(
                "ms_in",
                ManhattanPath([Point(35, 150), Point(140, 150)], width=10.0),
            )
        )
        checker = DesignRuleChecker(check_lengths=False, check_spacing=False)
        report = checker.check(layout)
        assert report.count(ViolationKind.OPEN_CONNECTION) == 1

    def test_reversed_route_direction_accepted(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 35.0, 150.0)
        layout.place_device("P_OUT", 365.0, 150.0)
        layout.place_device("M1", 200.0, 150.0)
        gate = layout.pin_position("M1", "G")
        pad = layout.pin_position("P_IN", "SIG")
        # Stored end-to-start: still a closed connection.
        layout.set_route(
            RoutedMicrostrip("ms_in", ManhattanPath([gate, pad], width=10.0))
        )
        checker = DesignRuleChecker(check_lengths=False, check_spacing=False)
        assert checker.check(layout).count(ViolationKind.OPEN_CONNECTION) == 0


class TestLengthCheck:
    def test_length_mismatch_amount(self, hand_layout):
        report = run_drc(hand_layout)
        mismatches = report.by_kind(ViolationKind.LENGTH_MISMATCH)
        assert mismatches
        for violation in mismatches:
            assert violation.amount > 0

    def test_exact_length_accepted(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 35.0, 150.0)
        layout.place_device("P_OUT", 365.0, 150.0)
        layout.place_device("M1", 200.0, 150.0)
        pad = layout.pin_position("P_IN", "SIG")
        gate = layout.pin_position("M1", "G")
        # Direct distance is 145 um; the target is 250 um, so a detour of the
        # right depth plus the bend compensation must land exactly on target.
        # 4 bends at delta = -4 um -> geometric length must be 266 um.
        detour = (266.0 - 145.0) / 2.0
        path = ManhattanPath(
            [
                pad,
                Point(pad.x + 40.0, pad.y),
                Point(pad.x + 40.0, pad.y + detour),
                Point(pad.x + 80.0, pad.y + detour),
                Point(pad.x + 80.0, pad.y),
                gate,
            ],
            width=10.0,
        )
        layout.set_route(RoutedMicrostrip("ms_in", path))
        checker = DesignRuleChecker(check_spacing=False, check_crossings=False)
        report = checker.check(layout)
        mismatch_subjects = [
            violation.subject
            for violation in report.by_kind(ViolationKind.LENGTH_MISMATCH)
        ]
        assert "ms_in" not in mismatch_subjects
