"""Unit tests for the Layout container."""

import pytest

from repro.errors import LayoutError
from repro.geometry import ManhattanPath, Point
from repro.layout import Layout, Placement, RoutedMicrostrip


class TestPopulation:
    def test_place_and_route_lookup(self, hand_layout):
        assert hand_layout.is_complete
        assert hand_layout.placement("M1").device_name == "M1"
        assert hand_layout.route("ms_in").net_name == "ms_in"

    def test_unknown_device_placement_rejected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        with pytest.raises(LayoutError):
            layout.set_placement(Placement("GHOST", Point(0, 0)))

    def test_unknown_net_route_rejected(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        path = ManhattanPath([Point(0, 0), Point(10, 0)], width=10.0)
        with pytest.raises(LayoutError):
            layout.set_route(RoutedMicrostrip("ghost", path))

    def test_missing_lookup_raises(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        with pytest.raises(LayoutError):
            layout.placement("M1")
        with pytest.raises(LayoutError):
            layout.route("ms_in")

    def test_is_complete_progression(self, tiny_netlist, hand_layout):
        partial = Layout(tiny_netlist)
        assert not partial.is_complete
        partial.place_device("M1", 200, 150)
        assert not partial.is_complete
        assert hand_layout.is_complete


class TestDerivedGeometry:
    def test_pin_positions_follow_placement(self, hand_layout):
        gate = hand_layout.pin_position("M1", "G")
        assert gate == Point(180.0, 150.0)

    def test_terminal_positions(self, hand_layout):
        start, end = hand_layout.terminal_positions("ms_in")
        assert start == hand_layout.pin_position("P_IN", "SIG")
        assert end == hand_layout.pin_position("M1", "G")

    def test_outline_dictionaries(self, hand_layout):
        devices = hand_layout.device_outlines()
        segments = hand_layout.segment_outlines()
        everything = hand_layout.all_outlines()
        assert set(devices) == {"dev:M1", "dev:P_IN", "dev:P_OUT"}
        assert all(key.startswith("net:") for key in segments)
        assert len(everything) == len(devices) + len(segments)

    def test_outline_clearance_expansion(self, hand_layout):
        tight = hand_layout.device_outline("M1")
        expanded = hand_layout.device_outline("M1", clearance=5.0)
        assert expanded.width == pytest.approx(tight.width + 10.0)

    def test_occupied_bounding_box(self, hand_layout, tiny_netlist):
        assert Layout(tiny_netlist).occupied_bounding_box() is None
        box = hand_layout.occupied_bounding_box()
        assert box is not None
        assert box.area > 0

    def test_boundary_matches_netlist_area(self, hand_layout):
        assert hand_layout.boundary.as_tuple() == (0.0, 0.0, 400.0, 300.0)


class TestCopies:
    def test_copy_is_independent(self, hand_layout):
        clone = hand_layout.copy()
        clone.place_device("M1", 111.0, 111.0)
        assert hand_layout.placement("M1").center != Point(111.0, 111.0)

    def test_with_simplified_routes(self, tiny_netlist):
        layout = Layout(tiny_netlist)
        layout.place_device("P_IN", 35, 150)
        layout.place_device("P_OUT", 365, 150)
        layout.place_device("M1", 200, 150)
        wiggly = ManhattanPath(
            [Point(35, 150), Point(100, 150), Point(180, 150)], width=10.0
        )
        layout.set_route(RoutedMicrostrip("ms_in", wiggly))
        simplified = layout.with_simplified_routes()
        assert len(simplified.route("ms_in").chain_points) == 2
        assert len(layout.route("ms_in").chain_points) == 3

    def test_metadata_copied(self, hand_layout):
        hand_layout.metadata["flow"] = "hand"
        clone = hand_layout.copy()
        clone.metadata["flow"] = "other"
        assert hand_layout.metadata["flow"] == "hand"
