"""Tests for the experiment reporting helpers and the published paper data."""

import csv
import json

import pytest

from repro.experiments import (
    PAPER_CIRCUIT_SIZES,
    PAPER_FIGURE11_GAIN,
    PAPER_TABLE1,
    format_runtime,
    format_text_table,
    paper_table1_entry,
    save_csv,
    save_json,
)


class TestTextTable:
    def test_basic_rendering(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        text = format_text_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in text  # missing value placeholder
        assert "22" in text

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_text_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_text_table([], title="empty")

    def test_float_formatting(self):
        text = format_text_table([{"x": 3.14159}])
        assert "3.142" in text


class TestPersistence:
    def test_save_json(self, tmp_path):
        path = save_json({"rows": [1, 2, 3]}, tmp_path / "out.json")
        assert json.loads(path.read_text()) == {"rows": [1, 2, 3]}

    def test_save_json_handles_numpy(self, tmp_path):
        import numpy as np

        path = save_json({"value": np.float64(1.5)}, tmp_path / "np.json")
        assert json.loads(path.read_text()) == {"value": 1.5}

    def test_save_csv(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = save_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[1]["b"] == "y"

    def test_save_empty_csv(self, tmp_path):
        path = save_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestRuntimeFormatting:
    @pytest.mark.parametrize(
        "seconds,expected",
        [(5.0, "5.0s"), (65.0, "1m05.0s"), (1085.4, "18m05.4s"), (-3.0, "0.0s")],
    )
    def test_format_runtime(self, seconds, expected):
        assert format_runtime(seconds) == expected


class TestPaperData:
    def test_every_circuit_has_two_area_settings(self):
        circuits = {key[0] for key in PAPER_TABLE1}
        for circuit in circuits:
            assert (circuit, 0) in PAPER_TABLE1
            assert (circuit, 1) in PAPER_TABLE1

    def test_pilp_beats_manual_in_published_numbers(self):
        for (circuit, setting), entry in PAPER_TABLE1.items():
            if entry.manual_total_bends is not None:
                assert entry.pilp_total_bends < entry.manual_total_bends
            if entry.manual_max_bends is not None:
                assert entry.pilp_max_bends <= entry.manual_max_bends

    def test_lookup_helper(self):
        assert paper_table1_entry("lna94", 0).manual_total_bends == 59
        assert paper_table1_entry("lna94", 5) is None

    def test_figure11_gains_favor_pilp(self):
        for values in PAPER_FIGURE11_GAIN.values():
            assert values["pilp"] >= values["manual"]

    def test_circuit_sizes_consistent_with_table(self):
        assert set(PAPER_CIRCUIT_SIZES) == {key[0] for key in PAPER_TABLE1}
