"""Tests of the Table 1 / Figure 11 harness logic.

The real benchmark circuits and solver budgets are exercised by the
``benchmarks/`` harness; here the expensive flows are replaced by the
session-scoped solved results so the aggregation, comparison and "shape"
logic can be tested quickly and deterministically.
"""

import types

import pytest

# These reuse the session-scoped solved-flow fixtures, so selecting them
# triggers the MILP solves; keep them in the slow bucket.
pytestmark = pytest.mark.slow

from repro.circuit import LayoutArea
from repro.experiments import figure11 as figure11_module
from repro.experiments import table1 as table1_module
from repro.experiments.figure11 import run_figure11_circuit
from repro.experiments.table1 import Table1Result, Table1Row, run_table1_circuit
from repro.errors import ExperimentError
from repro.rf import SignalChain


@pytest.fixture
def patched_table1(monkeypatch, session_small_netlist, pilp_small_result, manual_small_result):
    """Patch the Table 1 harness to use the pre-solved small circuit."""

    fake_circuit = types.SimpleNamespace(netlist=session_small_netlist)
    monkeypatch.setattr(
        table1_module, "get_circuit", lambda name, variant=None, area=None: fake_circuit
    )
    monkeypatch.setattr(
        table1_module,
        "area_settings",
        lambda name, variant=None: [LayoutArea(600.0, 450.0), LayoutArea(550.0, 400.0)],
    )

    class FakePILP:
        def __init__(self, config=None):
            pass

        def generate(self, netlist):
            return pilp_small_result

    class FakeManual:
        def __init__(self, *args, **kwargs):
            pass

        def generate(self, netlist):
            return manual_small_result

    monkeypatch.setattr(table1_module, "PILPLayoutGenerator", FakePILP)
    monkeypatch.setattr(table1_module, "ManualLikeFlow", FakeManual)
    return fake_circuit


@pytest.fixture
def patched_figure11(monkeypatch, session_small_netlist, pilp_small_result, manual_small_result):
    """Patch the Figure 11 harness to use the pre-solved small circuit."""
    chain = SignalChain.from_shorthand(
        "small5",
        [
            ("device", "P_IN"),
            ("line", "ms1"),
            ("device", "M1"),
            ("line", "ms2"),
            ("device", "C1"),
            ("line", "ms3"),
            ("device", "M2"),
            ("line", "ms4"),
            ("device", "P_OUT"),
        ],
    )
    fake_circuit = types.SimpleNamespace(netlist=session_small_netlist, chain=chain)
    monkeypatch.setattr(
        figure11_module, "get_circuit", lambda name, variant=None, area=None: fake_circuit
    )
    monkeypatch.setattr(
        figure11_module, "pilp_area", lambda name, variant=None: LayoutArea(600.0, 450.0)
    )

    class FakePILP:
        def __init__(self, config=None):
            pass

        def generate(self, netlist):
            return pilp_small_result

    class FakeManual:
        def __init__(self, *args, **kwargs):
            pass

        def generate(self, netlist):
            return manual_small_result

    monkeypatch.setattr(figure11_module, "PILPLayoutGenerator", FakePILP)
    monkeypatch.setattr(figure11_module, "ManualLikeFlow", FakeManual)
    return fake_circuit


class TestTable1Harness:
    def test_rows_cover_both_area_settings(self, patched_table1):
        result = run_table1_circuit("lna94")
        assert len(result.rows) == 2
        assert result.rows[0].area_setting == 0
        assert result.rows[1].area_setting == 1

    def test_manual_only_on_first_setting(self, patched_table1):
        result = run_table1_circuit("lna94")
        assert result.rows[0].manual_total_bends is not None
        assert result.rows[1].manual_total_bends is None

    def test_paper_reference_attached(self, patched_table1):
        result = run_table1_circuit("lna94")
        assert result.rows[0].paper_pilp_total_bends == 22
        assert result.rows[0].paper_manual_total_bends == 59

    def test_shape_holds_for_solved_small_circuit(self, patched_table1):
        result = run_table1_circuit("lna94")
        assert result.shape_holds()

    def test_text_rendering(self, patched_table1):
        result = run_table1_circuit("lna94")
        text = result.to_text()
        assert "Table 1" in text
        assert "pilp_total_bends" in text

    def test_include_manual_false(self, patched_table1):
        result = run_table1_circuit("lna94", include_manual=False)
        assert result.rows[0].manual_total_bends is None

    def test_shape_fails_when_pilp_worse(self):
        row = Table1Row(
            circuit="x",
            area_setting=0,
            area_label="100x100",
            num_microstrips=1,
            num_devices=1,
            manual_max_bends=1,
            manual_total_bends=2,
            manual_runtime_s=1.0,
            pilp_max_bends=5,
            pilp_total_bends=9,
            pilp_runtime_s=1.0,
            pilp_drc_clean=True,
        )
        assert not Table1Result(rows=[row]).shape_holds()


class TestFigure11Harness:
    def test_series_and_gains(self, patched_figure11):
        result = run_figure11_circuit("buffer60")
        assert result.circuit == "buffer60"
        assert result.designed.sparameters.frequencies.size > 0
        rows = result.gain_rows()
        assert [row["series"] for row in rows] == ["designed", "manual-like", "p-ilp"]

    def test_paper_gains_attached(self, patched_figure11):
        result = run_figure11_circuit("buffer60")
        assert result.paper_manual_gain_db == pytest.approx(16.791)
        assert result.paper_pilp_gain_db == pytest.approx(16.998)

    def test_text_rendering(self, patched_figure11):
        text = run_figure11_circuit("buffer60").to_text()
        assert "Figure 11" in text
        assert "p-ilp" in text

    def test_series_dict_is_json_friendly(self, patched_figure11):
        import json

        data = run_figure11_circuit("buffer60").series_dict()
        assert json.dumps(data)

    def test_unknown_circuit_rejected(self):
        with pytest.raises(ExperimentError):
            run_figure11_circuit("lna60")

    def test_shape_claim(self, patched_figure11):
        result = run_figure11_circuit("buffer60")
        # The solved P-ILP layout has exact lengths and few bends, the manual
        # baseline has many serpentine bends: the gain ordering must match
        # the paper's Figure 11.
        assert result.shape_holds()


@pytest.fixture
def patched_job_run(monkeypatch, pilp_small_result, manual_small_result):
    """Make LayoutJob.run return the pre-solved session results by flow."""
    from repro.runner import jobs as jobs_module

    calls = {"count": 0}

    def fake_run(self, checkpoint=None):
        calls["count"] += 1
        return pilp_small_result if self.flow == "pilp" else manual_small_result

    monkeypatch.setattr(jobs_module.LayoutJob, "run", fake_run)
    return calls


class TestTable1ThroughRunner:
    def test_rows_match_inline_harness(self, patched_table1, patched_job_run):
        from repro.runner import BatchRunner

        inline = run_table1_circuit("lna94")
        batched = run_table1_circuit("lna94", runner=BatchRunner(workers=0))
        assert len(batched.rows) == len(inline.rows) == 2
        for inline_row, batched_row in zip(inline.rows, batched.rows):
            assert batched_row.circuit == inline_row.circuit
            assert batched_row.pilp_total_bends == inline_row.pilp_total_bends
            assert batched_row.pilp_max_bends == inline_row.pilp_max_bends
            assert batched_row.manual_total_bends == inline_row.manual_total_bends
        assert "lna94[0].manual" in batched.flow_results
        assert "lna94[1].pilp" in batched.flow_results

    def test_full_table_is_one_batch(self, patched_table1, patched_job_run, monkeypatch):
        from repro.experiments import table1 as table1_module
        from repro.runner import BatchRunner

        monkeypatch.setattr(table1_module, "circuit_names", lambda: ["lna94"])
        result = table1_module.run_table1(runner=BatchRunner(workers=0))
        assert len(result.rows) == 2

    def test_cache_serves_second_run(self, patched_table1, patched_job_run, tmp_path):
        from repro.runner import BatchRunner

        run_table1_circuit("lna94", runner=BatchRunner(cache_dir=tmp_path, workers=0))
        solves_before = patched_job_run["count"]
        assert solves_before > 0

        second = run_table1_circuit(
            "lna94", runner=BatchRunner(cache_dir=tmp_path, workers=0)
        )
        assert patched_job_run["count"] == solves_before
        assert len(second.rows) == 2

    def test_failed_job_raises_experiment_error(
        self, patched_table1, monkeypatch
    ):
        from repro.runner import jobs as jobs_module
        from repro.runner import BatchRunner

        def broken_run(self, checkpoint=None):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(jobs_module.LayoutJob, "run", broken_run)
        with pytest.raises(ExperimentError):
            run_table1_circuit("lna94", runner=BatchRunner(workers=0))


class TestFigure11ThroughRunner:
    def test_matches_inline_harness(self, patched_figure11, patched_job_run):
        from repro.runner import BatchRunner

        inline = run_figure11_circuit("buffer60")
        batched = run_figure11_circuit("buffer60", runner=BatchRunner(workers=0))
        assert batched.circuit == inline.circuit
        assert batched.pilp.gain_db_at_f0 == pytest.approx(
            inline.pilp.gain_db_at_f0, abs=1e-6
        )
        assert batched.manual.gain_db_at_f0 == pytest.approx(
            inline.manual.gain_db_at_f0, abs=1e-6
        )
        assert batched.shape_holds() == inline.shape_holds()
