"""Unit tests for the seed placement and confinement-window helpers."""

import itertools

import pytest

from repro.core import (
    chain_point_counts,
    chain_positions_from_layout,
    chain_windows_from_positions,
    device_windows_from_layout,
    mean_device_extent,
    window_around,
)
from repro.core.seed import relax_seed_overlaps, seed_placement, spread_boundary_pads
from repro.geometry import Point
from tests.conftest import build_small_netlist, build_tiny_netlist


class TestSeedPlacement:
    def test_all_devices_receive_a_seed(self):
        netlist = build_small_netlist()
        seeds = seed_placement(netlist)
        assert set(seeds) == set(netlist.device_names)

    def test_seeds_inside_area(self):
        netlist = build_small_netlist()
        for point in seed_placement(netlist).values():
            assert 0.0 <= point.x <= netlist.area.width
            assert 0.0 <= point.y <= netlist.area.height

    def test_pads_touch_the_boundary(self):
        netlist = build_tiny_netlist()
        seeds = seed_placement(netlist)
        for pad in netlist.pads():
            device = netlist.device(pad.name)
            point = seeds[pad.name]
            distances = [
                point.x - device.width / 2.0,
                netlist.area.width - device.width / 2.0 - point.x,
                point.y - device.height / 2.0,
                netlist.area.height - device.height / 2.0 - point.y,
            ]
            assert min(abs(d) for d in distances) < 1.0

    def test_determinism(self):
        netlist = build_small_netlist()
        first = seed_placement(netlist, seed=7)
        second = seed_placement(netlist, seed=7)
        assert first == second

    def test_no_two_seeds_overlap_outlines(self):
        netlist = build_small_netlist()
        seeds = seed_placement(netlist)
        for name_a, name_b in itertools.combinations(seeds, 2):
            device_a = netlist.device(name_a)
            device_b = netlist.device(name_b)
            minimum = (
                max(device_a.width, device_a.height) / 2.0
                + max(device_b.width, device_b.height) / 2.0
            )
            distance = seeds[name_a].euclidean_distance(seeds[name_b])
            assert distance >= 0.6 * minimum

    def test_relax_seed_overlaps_separates_coincident_points(self):
        netlist = build_tiny_netlist()
        coincident = {name: Point(200.0, 150.0) for name in netlist.device_names}
        relaxed = relax_seed_overlaps(coincident, netlist)
        distances = [
            relaxed[a].euclidean_distance(relaxed[b])
            for a, b in itertools.combinations(relaxed, 2)
        ]
        assert min(distances) > 10.0

    def test_spread_boundary_pads_keeps_pads_apart(self):
        netlist = build_small_netlist()
        seeds = {name: Point(30.0, 225.0) for name in netlist.device_names}
        spread = spread_boundary_pads(seeds, netlist)
        pads = [pad.name for pad in netlist.pads()]
        coordinates = {spread[name].as_tuple() for name in pads}
        assert len(coordinates) == len(pads)


class TestWindows:
    def test_window_around(self):
        window = window_around(Point(10.0, 20.0), 5.0)
        assert window.as_tuple() == (5.0, 15.0, 15.0, 25.0)

    def test_device_windows_from_layout(self, hand_layout):
        windows = device_windows_from_layout(hand_layout, 30.0)
        assert set(windows) == {"M1", "P_IN", "P_OUT"}
        assert windows["M1"].contains_point(hand_layout.placement("M1").center)

    def test_chain_positions_and_windows(self, hand_layout):
        positions = chain_positions_from_layout(hand_layout)
        assert set(positions) == {"ms_in", "ms_out"}
        counts = chain_point_counts(positions)
        assert counts["ms_in"] == 3
        windows = chain_windows_from_positions(positions, 25.0)
        assert ("ms_in", 0) in windows
        assert windows[("ms_in", 0)].width == pytest.approx(50.0)

    def test_mean_device_extent(self):
        netlist = build_tiny_netlist()
        # Only the transistor is a non-pad device: (40 + 30) / 2 = 35.
        assert mean_device_extent(netlist) == pytest.approx(35.0)
        with_pads = mean_device_extent(netlist, include_pads=True)
        assert with_pads > mean_device_extent(netlist)
