"""Per-phase solve checkpoints: serialization and bit-identical resume.

The determinism contract under test: every phase of the progressive flow
is a deterministic function of (prior geometry, configuration), so a solve
resumed from any phase checkpoint must settle to exactly the layout the
uninterrupted cold solve produces.  "Exactly" means the exported layout
documents are equal after removing ``metadata.runtime_s`` — wall-clock is
the one field that legitimately differs between any two runs of the same
solve, interrupted or not.
"""

import json

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointSink,
    CompletedPhase,
    SolveCheckpoint,
)
from repro.core.pilp import PILPLayoutGenerator
from repro.layout.export_json import layout_to_dict
from tests.conftest import build_tiny_netlist

pytestmark = pytest.mark.slow  # full (tiny) P-ILP solves


def normalized(layout) -> str:
    """Canonical form of a layout for bit-identity assertions."""
    doc = layout_to_dict(layout)
    doc.get("metadata", {}).pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


class RecordingSink(CheckpointSink):
    """Keeps every checkpoint in memory; replays a chosen one on load."""

    def __init__(self, resume_from=None):
        self.saved = []
        self.resume_from = resume_from

    def load(self):
        return self.resume_from

    def save(self, checkpoint):
        self.saved.append(checkpoint)
        return True


@pytest.fixture(scope="module")
def cold():
    """One uninterrupted solve, recording each phase's checkpoint."""
    netlist = build_tiny_netlist()
    sink = RecordingSink()
    result = PILPLayoutGenerator().generate(netlist, checkpoint=sink)
    return netlist, sink, result


class TestSerialization:
    def test_checkpoint_document_round_trip(self, cold):
        _, sink, _ = cold
        for checkpoint in sink.saved:
            doc = checkpoint.to_doc()
            rebuilt = SolveCheckpoint.from_doc(doc)
            assert rebuilt.stage == checkpoint.stage
            assert rebuilt.next_iteration == checkpoint.next_iteration
            assert rebuilt.layout_doc == checkpoint.layout_doc
            assert rebuilt.best_layout_doc == checkpoint.best_layout_doc
            assert [p.phase for p in rebuilt.completed] == [
                p.phase for p in checkpoint.completed
            ]

    def test_completed_phase_round_trip(self, cold):
        _, sink, _ = cold
        phase = sink.saved[-1].completed[0]
        rebuilt = CompletedPhase.from_doc(phase.to_doc())
        assert rebuilt.phase == phase.phase
        assert rebuilt.summary == phase.summary
        assert rebuilt.profile == phase.profile

    def test_schema_version_mismatch_rejected(self, cold):
        _, sink, _ = cold
        doc = sink.saved[0].to_doc()
        doc["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            SolveCheckpoint.from_doc(doc)

    def test_empty_completed_list_rejected(self, cold):
        _, sink, _ = cold
        doc = sink.saved[0].to_doc()
        doc["completed"] = []
        with pytest.raises(ValueError):
            SolveCheckpoint.from_doc(doc)

    def test_malformed_document_rejected(self):
        with pytest.raises(ValueError):
            SolveCheckpoint.from_doc({"schema": CHECKPOINT_SCHEMA_VERSION})


class TestResumeDeterminism:
    def test_cold_run_checkpoints_every_phase(self, cold):
        _, sink, result = cold
        stages = [c.stage for c in sink.saved]
        assert stages[:2] == ["phase1", "phase2"]
        assert result.checkpoint_writes == len(sink.saved)
        assert result.resumed_from_phase is None

    @pytest.mark.parametrize("index", [0, 1, -1])
    def test_resume_from_any_phase_is_bit_identical(self, cold, index):
        netlist, sink, result = cold
        state = sink.saved[index]
        resumed_sink = RecordingSink(resume_from=state)
        resumed = PILPLayoutGenerator().generate(
            netlist, checkpoint=resumed_sink
        )
        assert normalized(resumed.layout) == normalized(result.layout)
        assert resumed.resumed_from_phase == state.stage
        assert resumed.resume_saved_s == pytest.approx(state.elapsed_s)
        # Replayed phases report the stored per-phase numbers verbatim.
        assert [p.phase for p in resumed.phases] == [
            p.phase for p in result.phases
        ]

    def test_resume_after_final_phase_runs_nothing_extra(self, cold):
        netlist, sink, result = cold
        state = sink.saved[-1]
        resumed_sink = RecordingSink(resume_from=state)
        resumed = PILPLayoutGenerator().generate(
            netlist, checkpoint=resumed_sink
        )
        # Everything was already done: no fresh checkpoints, no extra
        # refinement iterations beyond what the cold run performed.
        assert resumed_sink.saved == []
        assert len(resumed.phases) == len(result.phases)
        assert normalized(resumed.layout) == normalized(result.layout)

    def test_resume_runtime_includes_replayed_budget(self, cold):
        netlist, sink, _ = cold
        state = sink.saved[0]
        resumed = PILPLayoutGenerator().generate(
            netlist, checkpoint=RecordingSink(resume_from=state)
        )
        assert resumed.runtime >= state.elapsed_s

    def test_profile_reports_resume_fields(self, cold):
        netlist, sink, _ = cold
        state = sink.saved[1]
        resumed_sink = RecordingSink(resume_from=state)
        resumed = PILPLayoutGenerator().generate(
            netlist, checkpoint=resumed_sink
        )
        profile = resumed.profile()
        assert profile["resumed_from_phase"] == state.stage
        assert profile["resume_saved_s"] == pytest.approx(state.elapsed_s)
        # Only the phases run live this time wrote fresh checkpoints.
        assert profile["checkpoint_writes"] == len(resumed_sink.saved)
        assert len(resumed_sink.saved) == len(resumed.phases) - len(
            state.completed
        )
