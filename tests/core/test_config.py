"""Unit tests for the P-ILP configuration objects."""

import pytest

from repro.errors import ConfigurationError
from repro.core import ObjectiveWeights, PILPConfig, PhaseSettings


class TestObjectiveWeights:
    def test_defaults_are_non_negative(self):
        weights = ObjectiveWeights()
        assert weights.alpha >= 0
        assert weights.eta >= 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectiveWeights(alpha=-1.0)

    def test_bend_weights_dominate_per_unit_length(self):
        # A single bend must cost more than a micrometre of length slack,
        # otherwise the solver would trade exactness for corners.
        weights = ObjectiveWeights()
        assert weights.alpha + weights.beta > weights.zeta


class TestPhaseSettings:
    def test_valid_settings(self):
        settings = PhaseSettings(time_limit=10.0, mip_gap=0.05)
        assert settings.backend == "highs"

    def test_invalid_time_limit(self):
        with pytest.raises(ConfigurationError):
            PhaseSettings(time_limit=0.0)

    def test_invalid_gap(self):
        with pytest.raises(ConfigurationError):
            PhaseSettings(mip_gap=1.5)

    def test_no_time_limit_allowed(self):
        assert PhaseSettings(time_limit=None).time_limit is None


class TestPILPConfig:
    def test_default_construction(self):
        config = PILPConfig()
        assert config.chain_points_per_microstrip >= 2
        assert config.max_chain_points >= config.chain_points_per_microstrip

    @pytest.mark.parametrize(
        "field,value",
        [
            ("chain_points_per_microstrip", 1),
            ("max_chain_points", 2),
            ("confinement_window", 0.0),
            ("refinement_window", -1.0),
            ("phase1_window", 0.0),
            ("blur_margin_factor", -0.5),
            ("max_refinement_iterations", -1),
            ("length_tolerance", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        base = dict(chain_points_per_microstrip=4, max_chain_points=8)
        base[field] = value
        with pytest.raises(ConfigurationError):
            PILPConfig(**base)

    def test_with_updates_returns_copy(self):
        config = PILPConfig()
        faster = config.with_updates(confinement_window=50.0)
        assert faster.confinement_window == 50.0
        assert config.confinement_window != 50.0

    def test_fast_profile_is_cheaper_than_paper_profile(self):
        fast = PILPConfig.fast()
        paper = PILPConfig.paper()
        assert fast.phase1.time_limit < paper.phase1.time_limit
        assert fast.max_refinement_iterations <= paper.max_refinement_iterations

    def test_refinement_window_not_larger_than_phase2_window(self):
        config = PILPConfig()
        assert config.refinement_window <= config.confinement_window
