"""Tests of the warm-start assignment construction."""

from __future__ import annotations

import pytest

from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.warm_start import (
    manhattan_guess,
    warm_start_from_geometry,
    warm_start_from_layout,
    warm_start_from_seeds,
)
from repro.geometry.point import Point


@pytest.fixture
def phase1_like_build(tiny_netlist):
    options = BuildOptions(
        blurred_devices=True,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=False,
    )
    return RficModelBuilder(tiny_netlist, PILPConfig.fast(), options).build()


def test_manhattan_guess_stays_on_l_path():
    points = manhattan_guess(Point(0.0, 0.0), Point(100.0, 60.0), 5)
    assert len(points) == 5
    assert points[0] == Point(0.0, 0.0)
    assert points[-1] == Point(100.0, 60.0)
    for point in points:
        # Every sample lies on the horizontal-then-vertical L.
        assert point.y == pytest.approx(0.0) or point.x == pytest.approx(100.0)


def test_warm_start_values_respect_bounds_and_choices(phase1_like_build):
    build = phase1_like_build
    seeds = {
        "P_IN": Point(10.0, 150.0),
        "P_OUT": Point(390.0, 150.0),
        "M1": Point(200.0, 100.0),
    }
    values = warm_start_from_seeds(build, seeds)
    assert values, "warm start must assign something"
    for var, value in values.items():
        assert var.lb - 1e-9 <= value <= var.ub + 1e-9
        if var.is_integer:
            assert value == pytest.approx(round(value))

    # Exactly one direction binary per segment.
    for net_vars in build.nets.values():
        for segment in net_vars.segments:
            chosen = sum(values[var] for var in segment.directions.values())
            assert chosen == pytest.approx(1.0)

    # Exactly three of four selectors raised per spacing pair.
    for pair in build.spacing_pairs:
        raised = sum(values[selector] for selector in pair.selectors)
        assert raised == pytest.approx(3.0)


def test_warm_start_seeds_branch_and_bound_incumbent(phase1_like_build):
    build = phase1_like_build
    seeds = {
        "P_IN": Point(10.0, 150.0),
        "P_OUT": Point(390.0, 150.0),
        "M1": Point(200.0, 100.0),
    }
    values = warm_start_from_seeds(build, seeds)
    solution = build.model.solve(
        backend="branch-and-bound",
        time_limit=10.0,
        max_nodes=50,
        warm_start=values,
    )
    # The model is fully soft, so the rounded-and-repaired warm start must
    # already be a feasible incumbent even within a tiny node budget.
    assert solution.is_feasible


def test_warm_start_from_layout_roundtrip(tiny_netlist, hand_layout):
    options = BuildOptions(
        blurred_devices=False,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=True,
        chain_point_counts={"ms_in": 3, "ms_out": 3},
    )
    build = RficModelBuilder(tiny_netlist, PILPConfig.fast(), options).build()
    values = warm_start_from_layout(build, hand_layout)
    for name, device_vars in build.devices.items():
        placement = hand_layout.placement(name)
        assert values[device_vars.x] == pytest.approx(placement.center.x)
        assert values[device_vars.y] == pytest.approx(placement.center.y)


def test_geometry_with_unknown_nets_is_ignored(phase1_like_build):
    values = warm_start_from_geometry(
        phase1_like_build,
        {"M1": Point(100.0, 100.0)},
        {"no_such_net": [Point(0, 0), Point(1, 1)]},
    )
    device_vars = phase1_like_build.devices["M1"]
    assert values[device_vars.x] == pytest.approx(100.0)
