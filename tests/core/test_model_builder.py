"""Unit tests for the concurrent placement-and-routing model builder.

These tests exercise the *structure* of the generated MILP (variables,
constraint families, pruning, options) without solving anything expensive;
the solved-model behaviour is covered by the exact-flow and P-ILP tests.
"""

import pytest

from repro.circuit import Rotation
from repro.core import BuildOptions, PILPConfig, RficModelBuilder
from repro.core.model_builder import DIRECTIONS
from repro.errors import ModelError
from repro.geometry import Rect
from repro.ilp.solution import Solution, SolveStatus
from tests.conftest import build_tiny_netlist


@pytest.fixture
def netlist():
    return build_tiny_netlist()


@pytest.fixture
def config():
    return PILPConfig.fast()


def build(netlist, config, **option_overrides):
    options = BuildOptions(**option_overrides)
    return RficModelBuilder(netlist, config, options).build()


class TestModelStructure:
    def test_variable_bundles_cover_netlist(self, netlist, config):
        result = build(netlist, config)
        assert set(result.devices) == set(netlist.device_names)
        assert set(result.nets) == set(netlist.microstrip_names)

    def test_chain_point_counts_respected(self, netlist, config):
        result = build(netlist, config, chain_point_counts={"ms_in": 5, "ms_out": 3})
        assert len(result.nets["ms_in"].xs) == 5
        assert len(result.nets["ms_in"].segments) == 4
        assert len(result.nets["ms_out"].segments) == 2

    def test_direction_binaries_per_segment(self, netlist, config):
        result = build(netlist, config)
        for net_vars in result.nets.values():
            for segment in net_vars.segments:
                assert set(segment.directions) == set(DIRECTIONS)
                assert all(var.is_binary for var in segment.directions.values())

    def test_bend_variables_only_at_interior_points(self, netlist, config):
        result = build(netlist, config, chain_point_counts={"ms_in": 4, "ms_out": 2})
        assert len(result.nets["ms_in"].bend_vars) == 2
        assert len(result.nets["ms_out"].bend_vars) == 0

    def test_exact_length_adds_equality(self, netlist, config):
        exact = build(netlist, config, exact_lengths=True)
        names = [constraint.name for constraint in exact.model.constraints]
        assert any(name.endswith(".exact_length") for name in names)
        assert exact.nets["ms_in"].length_slack is None

    def test_soft_length_adds_slack(self, netlist, config):
        soft = build(netlist, config, exact_lengths=False)
        assert soft.nets["ms_in"].length_slack is not None
        assert soft.max_length_slack_var is not None

    def test_overlap_slack_only_when_allowed(self, netlist, config):
        hard = build(netlist, config, allow_overlap=False)
        soft = build(netlist, config, allow_overlap=True)
        assert not hard.overlap_slacks
        assert soft.overlap_slacks

    def test_blurred_mode_grows_targets(self, netlist, config):
        blurred = build(netlist, config, blurred_devices=True, exact_lengths=False)
        normal = build(netlist, config, exact_lengths=False)
        assert (
            blurred.nets["ms_in"].target_length > normal.nets["ms_in"].target_length
        )

    def test_length_target_override(self, netlist, config):
        result = build(netlist, config, length_targets={"ms_in": 123.0})
        assert result.nets["ms_in"].target_length == pytest.approx(123.0)

    def test_blurred_mode_excludes_device_blocks(self, netlist, config):
        blurred = build(
            netlist, config, blurred_devices=True, exact_lengths=False,
            include_device_blocks=False,
        )
        full = build(netlist, config)
        assert blurred.num_spacing_pairs < full.num_spacing_pairs

    def test_rotation_variables_created_when_allowed(self, netlist, config):
        result = build(netlist, config, rotatable_devices={"M1"})
        assert len(result.devices["M1"].rotation_vars) == 4
        assert not result.devices["P_IN"].rotation_vars

    def test_pads_get_boundary_side_binaries(self, netlist, config):
        result = build(netlist, config)
        assert set(result.devices["P_IN"].boundary_sides) == {
            "left",
            "right",
            "bottom",
            "top",
        }
        assert not result.devices["M1"].boundary_sides

    def test_window_pruning_reduces_pairs(self, netlist, config):
        unpruned = build(netlist, config)
        windows = {
            ("ms_in", index): Rect(0, 0, 120, 120) for index in range(4)
        }
        windows.update({("ms_out", index): Rect(280, 180, 400, 300) for index in range(4)})
        device_windows = {
            "P_IN": Rect(0, 0, 120, 120),
            "M1": Rect(150, 100, 250, 200),
            "P_OUT": Rect(280, 180, 400, 300),
        }
        pruned = build(
            netlist,
            config,
            chain_windows=windows,
            device_windows=device_windows,
        )
        assert pruned.num_spacing_pairs < unpruned.num_spacing_pairs

    def test_statistics_scale_with_chain_points(self, netlist, config):
        small = build(netlist, config, chain_point_counts={"ms_in": 3, "ms_out": 3})
        large = build(netlist, config, chain_point_counts={"ms_in": 6, "ms_out": 6})
        assert (
            large.model.statistics()["binary_variables"]
            > small.model.statistics()["binary_variables"]
        )


class TestExtraction:
    def test_extract_requires_feasible_solution(self, netlist, config):
        result = build(netlist, config)
        with pytest.raises(ModelError):
            result.extract_layout(Solution(status=SolveStatus.INFEASIBLE))

    def test_extracted_layout_is_complete_and_rectilinear(
        self, exact_tiny_result
    ):
        layout = exact_tiny_result.layout
        assert layout.is_complete
        for route in layout.routes:
            for segment in route.segments():
                assert segment.is_horizontal or segment.is_vertical

    def test_diagnostic_maps_cover_all_nets(self, exact_tiny_result):
        phase = exact_tiny_result.phases[0]
        assert set(phase.length_errors) == {"ms_in", "ms_out"}
        assert set(phase.bend_counts) == {"ms_in", "ms_out"}
