"""Unit tests for the flow/phase result containers."""

import pytest

from repro.core.result import FlowResult, PhaseResult
from repro.ilp.solution import Solution, SolveStatus
from repro.layout import Layout, compute_metrics, run_drc


def make_phase(layout, name="phase1", runtime=1.5):
    solution = Solution(status=SolveStatus.FEASIBLE, objective=12.0, values={})
    # The empty values dict means is_feasible is False, which is fine for a
    # pure container test; objective formatting still works.
    return PhaseResult(
        phase=name,
        layout=layout,
        solution=solution,
        runtime=runtime,
        length_errors={"ms_in": -2.0, "ms_out": 1.0},
        bend_counts={"ms_in": 1, "ms_out": 2},
        total_overlap=3.5,
        model_statistics={"variables": 10},
    )


class TestPhaseResult:
    def test_aggregates(self, hand_layout):
        phase = make_phase(hand_layout)
        assert phase.max_abs_length_error == pytest.approx(2.0)
        assert phase.total_bends == 3
        assert phase.max_bends == 2

    def test_summary_fields(self, hand_layout):
        summary = make_phase(hand_layout).summary()
        assert summary["phase"] == "phase1"
        assert summary["status"] == "feasible"
        assert summary["total_bends"] == 3
        assert summary["runtime_s"] == pytest.approx(1.5)

    def test_empty_diagnostics(self, hand_layout):
        phase = PhaseResult(
            phase="exact",
            layout=hand_layout,
            solution=Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={}),
            runtime=0.1,
        )
        assert phase.max_abs_length_error == 0.0
        assert phase.max_bends == 0


class TestFlowResult:
    def make_flow(self, hand_layout):
        return FlowResult(
            flow="manual-like",
            circuit="tiny",
            layout=hand_layout,
            metrics=compute_metrics(hand_layout),
            drc=run_drc(hand_layout),
            runtime=4.2,
            phases=[make_phase(hand_layout)],
        )

    def test_summary_row(self, hand_layout):
        row = self.make_flow(hand_layout).summary()
        assert row["flow"] == "manual-like"
        assert row["circuit"] == "tiny"
        assert row["area"] == "400x300"
        assert isinstance(row["drc_clean"], bool)

    def test_is_clean_reflects_drc(self, hand_layout):
        flow = self.make_flow(hand_layout)
        # The hand layout misses its length targets, so it is not clean.
        assert flow.is_clean is False
        assert flow.summary()["drc_violations"] > 0

    def test_phase_table(self, hand_layout):
        table = self.make_flow(hand_layout).phase_table()
        assert len(table) == 1
        assert table[0]["phase"] == "phase1"
