"""Tests of the exact flow, the progressive flow and their phase mechanics.

The solver-heavy fixtures are session-scoped (see ``conftest.py``), so the
MILP work happens once; the tests here assert the properties the paper
claims of the resulting layouts: exact lengths, planarity, spacing, pads on
the boundary, and few bends.
"""

import pytest

from repro.core import PILPConfig, plan_refinement
from repro.core.result import FlowResult, PhaseResult
from repro.layout import ViolationKind, compute_metrics, run_drc

pytestmark = pytest.mark.slow


class TestExactFlow:
    def test_layout_is_drc_clean(self, exact_tiny_result):
        assert isinstance(exact_tiny_result, FlowResult)
        assert exact_tiny_result.drc.is_clean, exact_tiny_result.drc.summary()

    def test_lengths_match_exactly(self, exact_tiny_result):
        metrics = exact_tiny_result.metrics
        assert metrics.max_abs_length_error <= 0.5

    def test_bends_are_few(self, exact_tiny_result):
        # Two nets in a wide-open area: the optimum needs at most one bend
        # per net (and the solver proves it).
        assert exact_tiny_result.metrics.max_bend_count <= 1
        assert exact_tiny_result.metrics.total_bend_count <= 2

    def test_summary_row_fields(self, exact_tiny_result):
        row = exact_tiny_result.summary()
        assert row["flow"] == "exact-ilp"
        assert row["circuit"] == "tiny"
        assert row["drc_clean"] is True

    def test_phase_records_exist(self, exact_tiny_result):
        assert len(exact_tiny_result.phases) == 1
        phase = exact_tiny_result.phases[0]
        assert isinstance(phase, PhaseResult)
        assert phase.phase == "exact"
        assert phase.solution.is_feasible

    def test_metadata_describes_flow(self, exact_tiny_result):
        assert exact_tiny_result.layout.metadata["flow"] == "exact-ilp"


class TestProgressiveFlow:
    def test_runs_all_phases(self, pilp_small_result):
        names = [phase.phase for phase in pilp_small_result.phases]
        assert names[0] == "phase1"
        assert names[1] == "phase2"
        assert any(name.startswith("phase3") for name in names)

    def test_final_layout_complete(self, pilp_small_result):
        assert pilp_small_result.layout.is_complete

    def test_final_layout_is_clean(self, pilp_small_result):
        report = pilp_small_result.drc
        assert report.is_clean, report.summary()

    def test_lengths_match(self, pilp_small_result):
        assert pilp_small_result.metrics.max_abs_length_error <= 0.5

    def test_pads_on_boundary(self, pilp_small_result):
        report = run_drc(pilp_small_result.layout)
        assert report.count(ViolationKind.PAD_NOT_ON_BOUNDARY) == 0

    def test_phase1_reports_blurred_diagnostics(self, pilp_small_result):
        phase1 = pilp_small_result.phases[0]
        assert phase1.model_statistics["binary_variables"] > 0
        assert phase1.runtime > 0

    def test_phase_table_rows(self, pilp_small_result):
        rows = pilp_small_result.phase_table()
        assert len(rows) == len(pilp_small_result.phases)
        assert all("status" in row for row in rows)

    def test_runtime_accounts_for_phases(self, pilp_small_result):
        phase_total = sum(phase.runtime for phase in pilp_small_result.phases)
        assert pilp_small_result.runtime >= phase_total * 0.95

    def test_metrics_match_recomputation(self, pilp_small_result):
        recomputed = compute_metrics(pilp_small_result.layout)
        assert recomputed.total_bend_count == pilp_small_result.metrics.total_bend_count
        assert recomputed.max_bend_count == pilp_small_result.metrics.max_bend_count


class TestBaselineComparison:
    def test_pilp_uses_no_more_bends_than_manual(
        self, pilp_small_result, manual_small_result
    ):
        # The paper's headline qualitative result (Table 1).
        assert (
            pilp_small_result.metrics.total_bend_count
            <= manual_small_result.metrics.total_bend_count
        )

    def test_manual_layout_is_complete(self, manual_small_result):
        assert manual_small_result.layout.is_complete
        assert manual_small_result.flow == "manual-like"

    def test_manual_lengths_are_approximately_matched(self, manual_small_result):
        # The serpentine router matches equivalent lengths within a couple of
        # micrometres (its documented tolerance).
        assert manual_small_result.metrics.max_abs_length_error <= 5.0


class TestRefinementPlanning:
    def test_plan_on_clean_layout_deletes_unused_points(
        self, pilp_small_result, session_small_netlist, session_config
    ):
        plan = plan_refinement(
            session_small_netlist, pilp_small_result.layout, session_config
        )
        assert isinstance(plan.chain_positions, dict)
        assert set(plan.chain_positions) == set(session_small_netlist.microstrip_names)
        # A clean layout needs no inserted chain points.
        assert not plan.inserted_points

    def test_plan_inserts_points_for_mismatched_layout(
        self, hand_layout, tiny_netlist, test_config
    ):
        plan = plan_refinement(tiny_netlist, hand_layout, test_config)
        # The hand layout misses both length targets badly, so both nets
        # receive additional chain points for detours.
        assert set(plan.inserted_points) == {"ms_in", "ms_out"}
        for net_name, points in plan.chain_positions.items():
            assert len(points) <= test_config.max_chain_points
