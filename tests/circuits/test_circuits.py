"""Tests of the reconstructed benchmark circuits and their registry."""

import pytest

from repro.errors import ExperimentError, NetlistError
from repro.circuit import Severity, validate_netlist
from repro.circuit.netlist import LayoutArea
from repro.circuits import (
    AmplifierSpec,
    area_settings,
    build_amplifier_circuit,
    circuit_names,
    get_circuit,
    pilp_area,
)
from repro.experiments.paper_data import PAPER_CIRCUIT_SIZES, PAPER_TABLE1


class TestPublishedCounts:
    @pytest.mark.parametrize("name", ["lna94", "buffer60", "lna60"])
    def test_full_variants_match_table1_counts(self, name):
        circuit = get_circuit(name, "full")
        microstrips, devices = PAPER_CIRCUIT_SIZES[name]
        assert circuit.netlist.num_microstrips == microstrips
        assert circuit.netlist.num_devices == devices

    @pytest.mark.parametrize("name", ["lna94", "buffer60", "lna60"])
    def test_full_variants_use_published_area(self, name):
        circuit = get_circuit(name, "full")
        published = PAPER_TABLE1[(name, 0)].area
        assert circuit.netlist.area.as_tuple() == published

    @pytest.mark.parametrize("name", ["lna94", "buffer60", "lna60"])
    def test_no_validation_errors(self, name):
        for variant in ("full", "reduced"):
            issues = validate_netlist(get_circuit(name, variant).netlist)
            errors = [issue for issue in issues if issue.severity is Severity.ERROR]
            assert not errors, errors

    @pytest.mark.parametrize("name", ["lna94", "buffer60", "lna60"])
    def test_reduced_variants_are_smaller(self, name):
        full = get_circuit(name, "full")
        reduced = get_circuit(name, "reduced")
        assert reduced.netlist.num_microstrips < full.netlist.num_microstrips
        assert reduced.netlist.num_devices < full.netlist.num_devices

    @pytest.mark.parametrize("name", ["lna94", "buffer60", "lna60"])
    def test_rf_chain_is_consistent(self, name):
        circuit = get_circuit(name, "full")
        for net_name in circuit.chain.net_names():
            assert net_name in circuit.netlist.microstrip_names
        for device_name in circuit.chain.device_names():
            assert circuit.netlist.has_device(device_name)

    def test_circuits_have_pads(self):
        for name in circuit_names():
            circuit = get_circuit(name, "full")
            assert len(circuit.netlist.pads()) >= 2


class TestRegistry:
    def test_circuit_names_order(self):
        assert circuit_names() == ["lna94", "buffer60", "lna60"]

    def test_unknown_circuit_rejected(self):
        with pytest.raises(ExperimentError):
            get_circuit("oscillator77")
        with pytest.raises(ExperimentError):
            area_settings("oscillator77")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ExperimentError):
            get_circuit("lna94", "medium")

    def test_default_variant_respects_environment(self, monkeypatch):
        monkeypatch.delenv("RFIC_FULL_SIZE", raising=False)
        assert get_circuit("buffer60").netlist.name == "buffer60_reduced"
        monkeypatch.setenv("RFIC_FULL_SIZE", "1")
        assert get_circuit("buffer60").netlist.name == "buffer60"

    def test_area_settings_full(self):
        areas = area_settings("lna94", "full")
        assert len(areas) == 2
        assert areas[0].as_tuple() == (890.0, 615.0)
        assert areas[1].as_tuple() == (845.0, 580.0)

    def test_area_settings_reduced_shrink(self):
        areas = area_settings("lna94", "reduced")
        assert areas[1].area < areas[0].area

    def test_pilp_area_is_not_larger_than_manual(self):
        for name in ("lna94", "buffer60"):
            manual = area_settings(name, "full")[0]
            generated = pilp_area(name, "full")
            assert generated.area <= manual.area

    def test_area_override(self):
        custom = LayoutArea(700.0, 500.0)
        circuit = get_circuit("lna94", "full", area=custom)
        assert circuit.netlist.area.as_tuple() == (700.0, 500.0)


class TestGenerator:
    def test_counts_too_small_rejected(self):
        spec = AmplifierSpec(
            name="impossible",
            num_stages=3,
            operating_frequency_ghz=60.0,
            area=LayoutArea(600.0, 600.0),
            num_microstrips=3,
            num_devices=4,
        )
        with pytest.raises(NetlistError):
            build_amplifier_circuit(spec)

    def test_generated_lengths_fit_area_budget(self):
        circuit = get_circuit("lna94", "full")
        assert circuit.netlist.area_utilisation() < 0.6

    def test_stage_count_reflected_in_devices(self):
        circuit = get_circuit("lna60", "full")
        transistors = [
            device
            for device in circuit.netlist.devices
            if device.device_type.value == "transistor"
        ]
        assert len(transistors) == circuit.spec.num_stages

    def test_custom_spec_builds(self):
        spec = AmplifierSpec(
            name="custom",
            num_stages=1,
            operating_frequency_ghz=77.0,
            area=LayoutArea(500.0, 400.0),
            num_microstrips=6,
            num_devices=8,
        )
        circuit = build_amplifier_circuit(spec)
        assert circuit.netlist.num_microstrips == 6
        assert circuit.netlist.num_devices == 8
        assert circuit.netlist.operating_frequency_ghz == 77.0


class TestGeneratorSeedThreading:
    def test_unseeded_build_is_reproducible(self):
        first = get_circuit("lna94", "reduced").netlist
        second = get_circuit("lna94", "reduced").netlist
        assert [net.target_length for net in first.microstrips] == [
            net.target_length for net in second.microstrips
        ]

    def test_seed_jitters_lengths_deterministically(self):
        base = get_circuit("lna94", "reduced").netlist
        seeded_a = get_circuit("lna94", "reduced", seed=5).netlist
        seeded_b = get_circuit("lna94", "reduced", seed=5).netlist
        other = get_circuit("lna94", "reduced", seed=6).netlist
        lengths = lambda netlist: [net.target_length for net in netlist.microstrips]
        assert lengths(seeded_a) == lengths(seeded_b)
        assert lengths(seeded_a) != lengths(base)
        assert lengths(seeded_a) != lengths(other)

    def test_seed_preserves_published_counts(self):
        base = get_circuit("buffer60", "full")
        seeded = get_circuit("buffer60", "full", seed=3)
        assert seeded.netlist.num_microstrips == base.netlist.num_microstrips
        assert seeded.netlist.num_devices == base.netlist.num_devices

    def test_seed_jitter_is_bounded(self):
        base = get_circuit("lna60", "reduced").netlist
        seeded = get_circuit("lna60", "reduced", seed=9).netlist
        for reference, jittered in zip(base.microstrips, seeded.microstrips):
            assert jittered.name == reference.name
            ratio = jittered.target_length / reference.target_length
            assert 0.90 < ratio < 1.10

    def test_spec_seed_equivalent_to_builder_seed(self):
        from dataclasses import replace

        from repro.circuits import lna94_spec

        spec = replace(lna94_spec(), seed=5)
        via_spec = build_amplifier_circuit(spec).netlist
        via_kwarg = build_amplifier_circuit(lna94_spec(), seed=5).netlist
        assert [net.target_length for net in via_spec.microstrips] == [
            net.target_length for net in via_kwarg.microstrips
        ]
