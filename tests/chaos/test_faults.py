"""The fault-injection harness itself: determinism, windows, counters."""

import json
import os
import subprocess
import sys

import pytest

from repro.faults import ENV_VAR, FAULTS, FaultInjector, FaultSpec, env_payload

pytestmark = pytest.mark.chaos


class TestSpecWindows:
    def test_times_and_after_window(self):
        spec = FaultSpec(point="p", after=2, times=3)
        fired = [index for index in range(10) if spec.matches(index)]
        assert fired == [2, 3, 4]

    def test_unlimited_times(self):
        spec = FaultSpec(point="p", times=0, after=1)
        assert not spec.matches(0)
        assert all(spec.matches(index) for index in range(1, 50))

    def test_errno_builds_real_oserror(self):
        exc = FaultSpec(point="p", errno_name="ENOSPC").build_exception()
        assert isinstance(exc, OSError)
        import errno

        assert exc.errno == errno.ENOSPC

    def test_round_trips_through_dict(self):
        spec = FaultSpec(
            point="x", action="sleep", seconds=1.5, after=2, chance=0.25
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestInjector:
    def test_inactive_injector_is_a_no_op(self):
        injector = FaultInjector()
        assert injector.hit("anything") is None
        injector.act("anything")  # must not raise
        assert injector.calls("anything") == 0

    def test_raise_action_fires_within_window(self):
        injector = FaultInjector()
        injector.install([FaultSpec(point="p", errno_name="EIO", times=2)])
        with pytest.raises(OSError):
            injector.act("p")
        with pytest.raises(OSError):
            injector.act("p")
        injector.act("p")  # window exhausted
        assert injector.calls("p") == 3
        assert injector.fired("p") == 2

    def test_chance_is_deterministic_per_seed(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector()
            injector.install(
                [FaultSpec(point="p", times=0, chance=0.5)], seed=1234
            )
            outcomes.append(
                [injector.hit("p") is not None for _ in range(64)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_different_seeds_differ(self):
        rolls = {}
        for seed in (1, 2):
            injector = FaultInjector()
            injector.install([FaultSpec(point="p", times=0, chance=0.5)], seed=seed)
            rolls[seed] = [injector.hit("p") is not None for _ in range(64)]
        assert rolls[1] != rolls[2]

    def test_state_dir_counters_survive_reinstall(self, tmp_path):
        plan = [FaultSpec(point="p", errno_name="EIO", times=1)]
        first = FaultInjector()
        first.install(plan, state_dir=tmp_path)
        with pytest.raises(OSError):
            first.act("p")
        # A second injector (another process in real life) sees the global
        # index and does NOT re-fire the exhausted one-shot fault.
        second = FaultInjector()
        second.install(plan, state_dir=tmp_path)
        second.act("p")
        assert second.calls("p") == 2
        assert second.fired("p") == 1


class TestCrossProcess:
    def test_env_payload_arms_a_subprocess(self, tmp_path):
        payload = env_payload(
            [FaultSpec(point="demo", errno_name="ENOSPC")],
            seed=7,
            state_dir=tmp_path,
        )
        code = (
            "from repro.faults import FAULTS\n"
            "assert FAULTS.active\n"
            "try:\n"
            "    FAULTS.act('demo')\n"
            "except OSError as exc:\n"
            "    print('fired', exc.errno)\n"
        )
        env = dict(os.environ, **{ENV_VAR: payload})
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("fired")
        # The file-backed counter recorded the subprocess's hit.
        parent = FaultInjector()
        parent.install([FaultSpec(point="demo")], state_dir=tmp_path)
        assert parent.calls("demo") == 1

    def test_payload_is_json(self):
        payload = json.loads(env_payload([FaultSpec(point="x")], seed=3))
        assert payload["seed"] == 3
        assert payload["faults"][0]["point"] == "x"
