"""Supervision: dispatcher restarts, crash retries, poison quarantine."""

import pytest

from repro.faults import FAULTS, FaultSpec
from repro.runner.cache import ResultCache
from repro.service import JobQueue, LayoutScheduler
from tests.chaos.conftest import make_scheduler, tiny_document, wait_until

pytestmark = pytest.mark.chaos


def make_pool_scheduler(tmp_path, poison_threshold=3, job_timeout=None):
    """A scheduler with a real fork-per-job worker pool (crash isolation)."""
    queue = JobQueue(tmp_path / "q", fsync=False)
    cache = ResultCache(tmp_path / "cache")
    return LayoutScheduler(
        queue=queue,
        cache=cache,
        concurrency=1,
        pool_workers=1,
        job_timeout=job_timeout,
        poison_threshold=poison_threshold,
    )


class TestDispatcherSupervision:
    def test_dispatcher_survives_injected_crash(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        FAULTS.install(
            [FaultSpec(point="scheduler.dispatch", message="loop bomb", times=3)]
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("survivor"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
            assert scheduler.queue.get(record.key).state == "done"
            stats = scheduler.stats()
            assert stats["supervision"]["dispatcher_restarts"] >= 1
            assert stats["health"]["dispatchers_alive"] == 1
        finally:
            scheduler.stop()


class TestWorkerCrashes:
    def test_crash_once_then_succeed(self, tmp_path):
        scheduler = make_pool_scheduler(tmp_path, poison_threshold=3)
        # state_dir makes the call counter global across the forked
        # workers: the first attempt crashes, the retry's fresh worker
        # sees index 1 and runs clean.
        FAULTS.install(
            [FaultSpec(point="worker.run", action="crash", times=1, exit_code=9)],
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("flaky"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            settled = scheduler.queue.get(record.key)
            assert settled.state == "done"
            assert settled.attempts == 2
            assert scheduler.stats()["supervision"]["crash_retries"] == 1
        finally:
            scheduler.stop()

    def test_persistent_crasher_is_quarantined_as_poisoned(self, tmp_path):
        scheduler = make_pool_scheduler(tmp_path, poison_threshold=2)
        FAULTS.install(
            [FaultSpec(point="worker.run", action="crash", times=0)],
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("poison"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            settled = scheduler.queue.get(record.key)
            assert settled.state == "failed"
            assert settled.error.startswith("poisoned:")
            assert settled.attempts == 2  # exactly poison_threshold workers died
            stats = scheduler.stats()["supervision"]
            assert stats["poisoned"] == 1
            assert stats["crash_retries"] == 1
        finally:
            scheduler.stop()

    def test_quarantine_does_not_block_other_jobs(self, tmp_path):
        scheduler = make_pool_scheduler(tmp_path, poison_threshold=2)
        FAULTS.install(
            # Crash only the first two worker runs: the poisoned job eats
            # its quarantine budget, the healthy job runs clean.
            [FaultSpec(point="worker.run", action="crash", times=2)],
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            bad, _ = scheduler.submit(tiny_document("bad"))
            assert wait_until(lambda: scheduler.queue.get(bad.key).terminal, 60)
            FAULTS.clear()
            good, _ = scheduler.submit(tiny_document("good"))
            assert wait_until(lambda: scheduler.queue.get(good.key).terminal, 60)
            assert scheduler.queue.get(bad.key).state == "failed"
            assert scheduler.queue.get(good.key).state == "done"
        finally:
            scheduler.stop()

    def test_hung_worker_is_timed_out_not_retried(self, tmp_path):
        scheduler = make_pool_scheduler(tmp_path, job_timeout=1.0)
        FAULTS.install(
            [FaultSpec(point="worker.run", action="sleep", seconds=30.0, times=1)],
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("hang"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            settled = scheduler.queue.get(record.key)
            # A timeout is a deterministic property of the job, not an
            # environmental crash: no retry, no quarantine.
            assert settled.state == "timeout"
            assert settled.attempts == 1
            assert scheduler.stats()["supervision"]["crash_retries"] == 0
        finally:
            scheduler.stop()


class TestResubmittedCrasher:
    def test_resubmission_cannot_exceed_poison_budget(self, tmp_path):
        """The quarantine budget is per content hash, not per submission.

        A job that reliably kills its workers gets exactly
        ``poison_threshold`` attempts *total*: resubmitting it after the
        quarantine must re-fail it as poisoned without buying a single
        additional worker.  (Before attempts rode the ``requeued``
        disposition, every resubmission restarted from ``attempts=0`` and
        the crasher could eat the pool forever, two workers at a time.)
        """
        scheduler = make_pool_scheduler(tmp_path, poison_threshold=2)
        FAULTS.install(
            [FaultSpec(point="worker.run", action="crash", times=0)],  # always
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("repeat-offender"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            first = scheduler.queue.get(record.key)
            assert first.state == "failed"
            assert first.error.startswith("poisoned:")
            assert first.attempts == 2

            for round_number in (1, 2):
                again, disposition = scheduler.submit(
                    tiny_document("repeat-offender")
                )
                assert again.key == record.key  # same content hash
                assert disposition == "requeued"
                assert again.attempts == 2  # the spent budget came along
                assert wait_until(
                    lambda: scheduler.queue.get(record.key).terminal, 60
                )
                settled = scheduler.queue.get(record.key)
                assert settled.state == "failed"
                assert settled.error.startswith("poisoned:")
                # The invariant under test: total attempts across ALL
                # resubmissions never exceed poison_threshold.
                assert settled.attempts == 2, round_number

            stats = scheduler.stats()["supervision"]
            # One environmental retry from the original incarnation; the
            # resubmissions were quarantined without running a worker.
            assert stats["crash_retries"] == 1
            assert stats["poisoned"] == 3  # one per quarantine decision
        finally:
            scheduler.stop()

    def test_resubmitted_ordinary_failure_still_gets_a_worker(self, tmp_path):
        """The pre-dispatch quarantine only fires on a *spent* budget.

        A job that failed cleanly (raise, not a dead worker) with attempts
        to spare is dispatched again on resubmission and can succeed."""
        scheduler = make_pool_scheduler(tmp_path, poison_threshold=3)
        FAULTS.install(
            [FaultSpec(point="worker.run", action="raise", times=1)],
            state_dir=tmp_path / "faults",
        )
        scheduler.start()
        try:
            record, _ = scheduler.submit(tiny_document("one-bad-day"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            first = scheduler.queue.get(record.key)
            assert first.state == "failed"
            assert not first.error.startswith("poisoned:")
            assert first.attempts == 1

            again, disposition = scheduler.submit(tiny_document("one-bad-day"))
            assert disposition == "requeued"
            assert again.attempts == 1
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal, 60)
            settled = scheduler.queue.get(record.key)
            assert settled.state == "done"
            assert settled.attempts == 2
        finally:
            scheduler.stop()


class TestAttemptsSurviveRestart:
    def test_attempts_replay_from_journal(self, tmp_path):
        """A crasher cannot reset its quarantine budget by killing the
        daemon: attempts ride the journal's start ops."""
        queue = JobQueue(tmp_path / "q", fsync=False)
        record, _ = queue.submit(tiny_document("counted"))
        queue.mark_running(record.key)
        assert queue.get(record.key).attempts == 1
        replayed = JobQueue(tmp_path / "q", fsync=False)
        again = replayed.get(record.key)
        assert again.attempts == 1
        assert again.state == "queued"  # in-flight job came back resumable
