"""Graceful drain: stop admitting, settle the journal, end every stream."""

import json
import threading

import pytest

from repro.service import (
    JobQueue,
    LayoutService,
    RetryPolicy,
    ServiceClient,
    ServiceDraining,
    ServiceError,
)
from repro.faults import FAULTS, FaultSpec
from tests.chaos.conftest import make_scheduler, tiny_document, wait_until

pytestmark = pytest.mark.chaos


def journal_settles_by_key(journal_path):
    counts = {}
    with journal_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("op") == "settle":
                key = entry["key"]
                counts[key] = counts.get(key, 0) + 1
    return counts


class TestSchedulerDrain:
    def test_draining_scheduler_refuses_submissions(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.begin_drain()
        with pytest.raises(ServiceDraining):
            scheduler.submit(tiny_document("late"))
        assert scheduler.draining

    def test_drain_under_load_loses_no_jobs(self, tmp_path):
        """The acceptance invariant: every submitted job is either settled
        (exactly once) or replayable as queued after the drain."""
        scheduler = make_scheduler(tmp_path, concurrency=2)
        FAULTS.install(
            # Every solve dawdles so the drain genuinely overlaps work.
            [FaultSpec(point="worker.run", action="sleep", seconds=0.05, times=0)]
        )
        scheduler.start()
        keys = [scheduler.submit(tiny_document(f"load{i}"))[0].key for i in range(8)]
        scheduler.drain(timeout=30)

        # Every job is either settled or journaled as resumable — drain may
        # stop dispatch before the backlog empties, but nothing may be lost
        # and nothing may be stuck "running".
        for key in keys:
            assert scheduler.queue.get(key).state in ("done", "queued")
        replayed = JobQueue(tmp_path / "svc", fsync=False)
        assert {r.key for r in replayed.records()} >= set(keys)
        # Exactly-once settlement: at most one terminal event per key.
        terminal = ("done", "failed", "timeout", "cancelled")
        for key in keys:
            events = scheduler.bus.history(key)
            assert sum(1 for e in events if e["kind"] in terminal) <= 1

    def test_concurrent_dispatch_settles_each_hash_exactly_once(self, tmp_path):
        scheduler = make_scheduler(tmp_path, concurrency=3)
        scheduler.start()
        try:
            keys = [
                scheduler.submit(tiny_document(f"once{i}"))[0].key for i in range(6)
            ]
            assert wait_until(
                lambda: all(scheduler.queue.get(k).terminal for k in keys)
            )
        finally:
            scheduler.stop()
        # The journal (un-compacted here) is the ground truth.
        settles = journal_settles_by_key(scheduler.queue.journal_path)
        assert set(settles) == set(keys)
        assert all(count == 1 for count in settles.values())

    def test_drain_settles_journal_and_keeps_queued_work(self, tmp_path):
        scheduler = make_scheduler(tmp_path)  # dispatchers never started
        keys = [scheduler.submit(tiny_document(f"q{i}"))[0].key for i in range(3)]
        scheduler.drain(timeout=5)
        # Drain compacts: the journal is a clean snapshot, and the queued
        # work survives into the next epoch untouched.
        with scheduler.queue.journal_path.open("r", encoding="utf-8") as handle:
            ops = [json.loads(line)["op"] for line in handle if line.strip()]
        assert ops and all(op == "record" for op in ops)
        replayed = JobQueue(tmp_path / "svc", fsync=False)
        for key in keys:
            assert replayed.get(key).state == "queued"


class TestServiceDrain:
    @pytest.fixture
    def service(self, tmp_path):
        instance = LayoutService(
            data_dir=tmp_path / "svc", inline=True, concurrency=1, fsync=False
        )
        instance.scheduler.stop()  # freeze dispatch: jobs stay queued
        instance.bind(port=0)
        threading.Thread(target=instance.serve_forever, daemon=True).start()
        yield instance
        instance.shutdown()

    def test_sse_stream_ends_with_shutdown_event(self, service):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", retry=RetryPolicy(attempts=1)
        )
        response = client.submit_document(tiny_document("watched"))
        key = response["key"]
        timer = threading.Timer(0.3, service.drain, kwargs={"timeout": 5})
        timer.start()
        try:
            events = list(client.iter_events(key, timeout=10, reconnect=False))
        finally:
            timer.cancel()
        assert events[-1]["kind"] == "shutdown"

    def test_draining_service_is_not_ready_and_refuses_jobs(self, service):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", retry=RetryPolicy(attempts=1)
        )
        service.scheduler.begin_drain()
        with pytest.raises(ServiceError, match="503"):
            client._json("/readyz")
        with pytest.raises(ServiceError, match="503"):
            client.submit_document(tiny_document("late"))
        # Liveness is unaffected: healthz still answers 200.
        assert client.health()["draining"] is True
