"""Degraded-mode operation: disk failures contain, flag, and recover."""

import pytest

from repro.faults import FAULTS, FaultSpec
from repro.service import JobQueue
from tests.chaos.conftest import make_scheduler, tiny_document, wait_until

pytestmark = pytest.mark.chaos


class TestJournalDegradation:
    def test_append_enospc_degrades_but_serves(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.start()
        try:
            FAULTS.install(
                [FaultSpec(point="journal.append", errno_name="ENOSPC", times=2)]
            )
            record, disposition = scheduler.submit(tiny_document("enospc"))
            assert disposition == "queued"
            # The daemon keeps working from memory: the job still settles.
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
            assert scheduler.queue.get(record.key).state == "done"
            assert scheduler.queue.write_errors >= 1
        finally:
            scheduler.stop()

    def test_degraded_flag_clears_on_next_good_write(self, tmp_path):
        queue = JobQueue(tmp_path / "q", fsync=False)
        FAULTS.install([FaultSpec(point="journal.append", errno_name="ENOSPC", times=1)])
        queue.submit(tiny_document("first"))
        assert queue.degraded is not None
        assert queue.write_errors == 1
        queue.submit(tiny_document("second"))  # disk "recovered"
        assert queue.degraded is None
        assert queue.write_errors == 1

    def test_lost_append_replays_as_resubmittable(self, tmp_path):
        """A submit whose journal line was lost is simply gone after a
        crash — and resubmitting it is safe (content-hash idempotent)."""
        queue = JobQueue(tmp_path / "q", fsync=False)
        FAULTS.install([FaultSpec(point="journal.append", errno_name="ENOSPC", times=1)])
        lost, _ = queue.submit(tiny_document("lost"))
        kept, _ = queue.submit(tiny_document("kept"))
        FAULTS.clear()
        replayed = JobQueue(tmp_path / "q", fsync=False)
        keys = {record.key for record in replayed.records()}
        assert kept.key in keys
        assert lost.key not in keys  # durability was lost, not correctness
        resubmitted, disposition = replayed.submit(tiny_document("lost"))
        assert disposition == "queued"
        assert resubmitted.key == lost.key

    def test_rotation_failure_keeps_valid_journal(self, tmp_path):
        queue = JobQueue(tmp_path / "q", fsync=False, max_journal_bytes=1)
        FAULTS.install([FaultSpec(point="journal.rotate", errno_name="EIO", times=0)])
        for index in range(3):
            queue.submit(tiny_document(f"rot{index}"))
        assert queue.degraded is not None
        assert not list((tmp_path / "q").glob(".journal-*.tmp"))  # staging cleaned
        FAULTS.clear()
        replayed = JobQueue(tmp_path / "q", fsync=False)
        assert len(replayed.records()) == 3

    def test_health_endpoint_reports_degradation(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        FAULTS.install([FaultSpec(point="journal.append", errno_name="ENOSPC", times=1)])
        scheduler.submit(tiny_document("x"))
        health = scheduler.health()
        assert health["status"] == "degraded"
        assert "journal append failed" in health["journal_degraded"]
        assert health["journal_write_errors"] == 1


class TestTornAppends:
    def test_torn_line_is_dropped_on_replay(self, tmp_path):
        queue = JobQueue(tmp_path / "q", fsync=False)
        keep, _ = queue.submit(tiny_document("keep"))
        FAULTS.install([FaultSpec(point="journal.append.torn", action="custom")])
        torn, _ = queue.submit(tiny_document("torn"))
        FAULTS.clear()
        replayed = JobQueue(tmp_path / "q", fsync=False)
        keys = {record.key for record in replayed.records()}
        assert keep.key in keys
        assert torn.key not in keys
        assert replayed.dropped_lines == 1

    def test_restart_terminates_torn_line_before_appending(self, tmp_path):
        """The epoch after a mid-append death must not glue its first
        append onto the torn fragment (which would corrupt a good record)."""
        queue = JobQueue(tmp_path / "q", fsync=False)
        FAULTS.install(
            [FaultSpec(point="journal.append.torn", action="custom", times=1)]
        )
        queue.submit(tiny_document("torn"))  # the writer "died" here
        FAULTS.clear()
        restarted = JobQueue(tmp_path / "q", fsync=False)
        after, _ = restarted.submit(tiny_document("after"))
        replayed = JobQueue(tmp_path / "q", fsync=False)
        assert after.key in {record.key for record in replayed.records()}
        assert replayed.dropped_lines == 1  # the fragment, nothing else


class TestCacheDegradation:
    def test_uncachable_job_still_settles_done(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.start()
        try:
            FAULTS.install(
                [FaultSpec(point="cache.put.staging", errno_name="ENOSPC", times=0)]
            )
            record, _ = scheduler.submit(tiny_document("uncached"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
            settled = scheduler.queue.get(record.key)
            assert settled.state == "done"  # the solve survived the dead cache
            assert scheduler.cache.stats.put_errors >= 1
            health = scheduler.health()
            assert health["status"] == "degraded"
            assert health["cache_writable"] is False
        finally:
            scheduler.stop()

    def test_corrupt_cache_entry_is_resolved_not_served(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.start()
        try:
            FAULTS.install(
                [FaultSpec(point="cache.put.corrupt", action="custom", times=1)]
            )
            record, _ = scheduler.submit(tiny_document("corrupt"))
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
            assert scheduler.queue.get(record.key).state == "done"
            FAULTS.clear()
            # The corrupted store never produced a usable entry; a second
            # epoch must re-solve (requeue), not serve garbage.
            fresh = make_scheduler(tmp_path, name="svc")
            fresh.cache = scheduler.cache
            resubmitted, disposition = fresh.submit(tiny_document("corrupt"))
            assert disposition in ("queued", "requeued")
        finally:
            scheduler.stop()
