"""Shared fixtures of the chaos suite (deterministic fault injection).

Every test runs with a clean :data:`repro.faults.FAULTS` singleton — the
autouse fixture clears any installed plan afterwards so a failing test
cannot leak faults into the rest of the session.
"""

import time

import pytest

from repro.faults import FAULTS
from repro.runner import LayoutJob
from repro.runner.cache import ResultCache
from repro.service import JobQueue, LayoutScheduler, job_to_document
from tests.conftest import build_tiny_netlist


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.clear()
    yield FAULTS
    FAULTS.clear()


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


def make_scheduler(tmp_path, name="svc", concurrency=1, **kwargs):
    """An inline-execution scheduler over a throwaway queue + cache."""
    queue = JobQueue(tmp_path / name, fsync=False)
    cache = ResultCache(tmp_path / f"{name}-cache")
    return LayoutScheduler(
        queue=queue, cache=cache, concurrency=concurrency, pool_workers=0, **kwargs
    )


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False
