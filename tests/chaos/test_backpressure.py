"""Admission backpressure: bounded queues, 429 + Retry-After, shedding."""

import threading

import pytest

from repro.service import (
    LayoutService,
    QueueSaturated,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from tests.chaos.conftest import make_scheduler, tiny_document, wait_until

pytestmark = pytest.mark.chaos


class TestSchedulerBounds:
    def test_global_depth_rejects_when_full(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_queue_depth=2)
        # Dispatchers never started: everything stays queued.
        scheduler.submit(tiny_document("a"))
        scheduler.submit(tiny_document("b"))
        with pytest.raises(QueueSaturated) as excinfo:
            scheduler.submit(tiny_document("c"))
        assert excinfo.value.retry_after >= 1.0
        assert scheduler.stats()["admission"]["rejected"] == 1

    def test_class_limit_rejects_only_that_class(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, max_queue_depth=10, class_limits={"interactive": 1}
        )
        scheduler.submit(tiny_document("a"), priority="interactive")
        with pytest.raises(QueueSaturated):
            scheduler.submit(tiny_document("b"), priority="interactive")
        record, disposition = scheduler.submit(tiny_document("c"), priority="batch")
        assert disposition == "queued"

    def test_background_is_shed_before_the_queue_fills(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, max_queue_depth=4, background_shed_ratio=0.5
        )
        scheduler.submit(tiny_document("a"))
        scheduler.submit(tiny_document("b"))  # depth 2 = shed threshold
        with pytest.raises(QueueSaturated) as excinfo:
            scheduler.submit(tiny_document("c"), priority="background")
        assert excinfo.value.shed
        # Higher classes still get the remaining capacity.
        record, disposition = scheduler.submit(tiny_document("d"), priority="batch")
        assert disposition == "queued"
        assert scheduler.stats()["admission"]["shed"] == 1

    def test_attach_bypasses_capacity(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_queue_depth=1)
        record, _ = scheduler.submit(tiny_document("a"))
        # Identical resubmission attaches — no new slot needed, no 429.
        again, disposition = scheduler.submit(tiny_document("a"))
        assert disposition == "attached"
        assert again.key == record.key

    def test_cache_hit_bypasses_capacity(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_queue_depth=1, concurrency=1)
        scheduler.start()
        record, _ = scheduler.submit(tiny_document("warm"))
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        scheduler.stop()
        # Queue is now empty; fill the single slot, then resubmit the
        # solved job through a *fresh* scheduler sharing the cache: it is
        # served from cache even though the queue is saturated.
        fresh = make_scheduler(tmp_path, name="svc2", max_queue_depth=1)
        fresh.cache = scheduler.cache
        fresh.submit(tiny_document("filler"))
        served, disposition = fresh.submit(tiny_document("warm"))
        assert disposition == "cached"
        assert served.state == "done"


class TestHTTPBackpressure:
    @pytest.fixture
    def service(self, tmp_path):
        instance = LayoutService(
            data_dir=tmp_path / "svc",
            inline=True,
            concurrency=1,
            fsync=False,
            max_queue_depth=2,
        )
        instance.scheduler.stop()  # freeze dispatch: jobs stay queued
        instance.bind(port=0)
        threading.Thread(target=instance.serve_forever, daemon=True).start()
        yield instance
        instance.shutdown()

    def test_saturated_queue_is_429_with_retry_after(self, service):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}",
            retry=RetryPolicy(attempts=1),
        )
        client.submit_document(tiny_document("a"))
        client.submit_document(tiny_document("b"))
        with pytest.raises(ServiceError, match="429") as excinfo:
            client.submit_document(tiny_document("c"))
        assert excinfo.value.retry_after is not None

    def test_readyz_flips_to_503_when_saturated(self, service):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", retry=RetryPolicy(attempts=1)
        )
        assert client._json("/readyz")["ready"] is True
        client.submit_document(tiny_document("a"))
        client.submit_document(tiny_document("b"))
        with pytest.raises(ServiceError, match="503"):
            client._json("/readyz")

    def test_client_retry_succeeds_once_capacity_frees(self, service):
        """The acceptance scenario: 429 now, success after the retry."""
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}",
            retry=RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.3, jitter=0.0),
        )
        client.submit_document(tiny_document("a"))
        client.submit_document(tiny_document("b"))

        def free_capacity():
            # While the client is backing off, the dispatcher "catches up".
            service.scheduler.start()

        timer = threading.Timer(0.3, free_capacity)
        timer.start()
        try:
            response = client.submit_document(tiny_document("c"))
        finally:
            timer.cancel()
        assert response["disposition"] in ("queued", "attached", "cached")
        stats = client.stats()
        assert stats["admission"]["rejected"] >= 1

    def test_healthz_always_answers(self, service):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", retry=RetryPolicy(attempts=1)
        )
        client.submit_document(tiny_document("a"))
        client.submit_document(tiny_document("b"))
        health = client.health()  # saturated, but alive
        assert health["status"] in ("ok", "degraded")
