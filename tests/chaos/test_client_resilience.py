"""Client-side containment: retries, circuit breaker, deadlines, SSE resume."""

import json
import random
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import (
    CircuitOpenError,
    LayoutService,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from tests.chaos.conftest import tiny_document

pytestmark = pytest.mark.chaos


def closed_port():
    """A port nothing listens on (bound once, then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Plays back whatever behaviour the test put on the server object."""

    protocol_version = "HTTP/1.0"  # close after each response: easy EOFs

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass

    def _dispatch(self):
        self.server.requests.append(
            {"path": self.path, "headers": dict(self.headers)}
        )
        self.server.script(self)

    do_GET = _dispatch
    do_POST = _dispatch

    def reply_json(self, payload, status=200, headers=None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def begin_sse(self):
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.end_headers()

    def sse_event(self, seq, kind, key="job"):
        payload = json.dumps(
            {"seq": seq, "kind": kind, "key": key, "state": kind, "detail": ""}
        )
        self.wfile.write(
            f"id: {seq}\nevent: {kind}\ndata: {payload}\n\n".encode("utf-8")
        )


class _StubServer(ThreadingHTTPServer):
    daemon_threads = True

    def handle_error(self, request, client_address):
        pass  # scripted connection deaths are intentional, not noise


@pytest.fixture
def scripted_server():
    server = _StubServer(("127.0.0.1", 0), _ScriptedHandler)
    server.requests = []
    server.script = lambda handler: handler.reply_json({"ok": True})
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield server
    server.shutdown()
    server.server_close()


def make_client(server, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(attempts=4, base_delay=0.02, jitter=0.0))
    return ServiceClient(f"http://127.0.0.1:{server.server_address[1]}", **kwargs)


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_stays_within_band_and_is_seedable(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5)
        one = random.Random(42)
        two = random.Random(42)
        delays = [policy.delay(1, one) for _ in range(64)]
        assert all(0.5 <= delay <= 1.5 for delay in delays)
        assert delays == [policy.delay(1, two) for _ in range(64)]  # seeded


class TestRetries:
    def test_429_is_retried_until_capacity(self, scripted_server):
        def script(handler):
            if len(scripted_server.requests) == 1:
                handler.reply_json(
                    {"error": "queue is full"}, status=429,
                    headers={"Retry-After": "0.05"},
                )
            else:
                handler.reply_json({"key": "k", "disposition": "queued"})

        scripted_server.script = script
        client = make_client(scripted_server)
        response = client._json("/jobs", {"demo": True})
        assert response["disposition"] == "queued"
        assert len(scripted_server.requests) == 2

    def test_non_transient_errors_fail_immediately(self, scripted_server):
        scripted_server.script = lambda handler: handler.reply_json(
            {"error": "no such job"}, status=404
        )
        client = make_client(scripted_server)
        with pytest.raises(ServiceError, match="404"):
            client._json("/jobs/deadbeef")
        assert len(scripted_server.requests) == 1  # no retry on a real error

    def test_deadline_caps_the_retry_dance(self):
        client = ServiceClient(
            f"http://127.0.0.1:{closed_port()}",
            timeout=0.2,
            retry=RetryPolicy(attempts=50, base_delay=0.05, jitter=0.0),
            breaker_threshold=1000,
        )
        start = time.monotonic()
        with pytest.raises(ServiceError, match="deadline"):
            client._json("/stats", deadline=0.4)
        assert time.monotonic() - start < 5.0

    def test_deadline_is_propagated_to_the_server(self, scripted_server):
        client = make_client(scripted_server)
        client._json("/jobs", {"demo": True}, deadline=7.5)
        header = scripted_server.requests[0]["headers"].get("X-Deadline-S")
        assert header is not None
        assert 0.0 < float(header) <= 7.5


class TestCircuitBreaker:
    def test_opens_after_repeated_network_failures_then_recovers(
        self, scripted_server
    ):
        dead = threading.Event()
        dead.set()

        def script(handler):
            if dead.is_set():
                handler.connection.close()  # mid-handshake death: a network error
            else:
                handler.reply_json({"status": "ok"})

        scripted_server.script = script
        client = make_client(
            scripted_server,
            retry=RetryPolicy(attempts=1),
            breaker_threshold=2,
            breaker_reset=0.3,
        )
        for _ in range(2):
            with pytest.raises(ServiceUnavailableError):
                client._json("/healthz")
        assert client.breaker_state == "open"
        with pytest.raises(CircuitOpenError):
            client._json("/healthz")  # fails fast, no socket touched
        requests_while_open = len(scripted_server.requests)

        time.sleep(0.35)
        assert client.breaker_state == "half-open"
        dead.clear()  # the server comes back; the half-open probe heals
        assert client.health()["status"] == "ok"
        assert client.breaker_state == "closed"
        assert len(scripted_server.requests) == requests_while_open + 1

    def test_saturation_does_not_trip_the_breaker(self, scripted_server):
        scripted_server.script = lambda handler: handler.reply_json(
            {"error": "full"}, status=429, headers={"Retry-After": "1"}
        )
        client = make_client(
            scripted_server, retry=RetryPolicy(attempts=1), breaker_threshold=1
        )
        for _ in range(3):
            with pytest.raises(ServiceUnavailableError):
                client._json("/jobs", {"demo": True})
        # A full queue is not an outage: the breaker must stay closed so
        # the saturation-retry loop can keep probing for capacity.
        assert client.breaker_state == "closed"


class TestSSEReconnect:
    def test_dropped_stream_resumes_from_last_seq(self, scripted_server):
        def script(handler):
            streams = [r for r in scripted_server.requests if "/events" in r["path"]]
            handler.begin_sse()
            if len(streams) == 1:
                handler.sse_event(1, "queued")
                handler.sse_event(2, "running")
                # ... connection drops without a terminal event.
            else:
                handler.sse_event(3, "done")

        scripted_server.script = script
        client = make_client(scripted_server)
        events = list(client.iter_events("job", timeout=10))
        assert [event["kind"] for event in events] == ["queued", "running", "done"]
        streams = [r for r in scripted_server.requests if "/events" in r["path"]]
        assert len(streams) == 2
        assert "after=2" in streams[1]["path"]  # resumed, not replayed

    def test_reconnect_budget_is_finite(self, scripted_server):
        scripted_server.script = lambda handler: handler.begin_sse()  # always empty
        client = make_client(
            scripted_server, retry=RetryPolicy(attempts=2, base_delay=0.01)
        )
        with pytest.raises(ServiceUnavailableError, match="without a"):
            list(client.iter_events("job", timeout=10))
        streams = [r for r in scripted_server.requests if "/events" in r["path"]]
        assert len(streams) == 2

    def test_reconnect_disabled_raises_on_first_drop(self, scripted_server):
        def script(handler):
            handler.begin_sse()
            handler.sse_event(1, "queued")

        scripted_server.script = script
        client = make_client(scripted_server)
        with pytest.raises(ServiceError):
            list(client.iter_events("job", timeout=10, reconnect=False))


class TestDeadlineAgainstRealService:
    def test_expired_deadline_is_refused_with_504(self, tmp_path):
        service = LayoutService(
            data_dir=tmp_path / "svc", inline=True, concurrency=1, fsync=False
        )
        service.scheduler.stop()
        service.bind(port=0)
        threading.Thread(target=service.serve_forever, daemon=True).start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{service.port}", retry=RetryPolicy(attempts=1)
            )
            with pytest.raises(ServiceError, match="504"):
                client._request("/jobs", tiny_document("late"), deadline_s=0.0)
        finally:
            service.shutdown()
