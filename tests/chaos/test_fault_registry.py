"""The fault-point registry must match the instrumented code, both ways.

:mod:`repro.faults` documents every instrumented fault point in its
module docstring's registry table.  That table is the canonical list a
chaos author reads before arming a plan — a point missing from it is
undiscoverable, and a documented point that no code consults silently
turns a chaos test into a no-op.  This test greps the source tree for
``FAULTS.act(...)`` / ``FAULTS.hit(...)`` call sites and diffs the two
sets in both directions.
"""

import re
from pathlib import Path

import repro.faults

SRC_ROOT = Path(repro.faults.__file__).resolve().parent

#: ``FAULTS.act("point")`` / ``FAULTS.hit("point")`` with a literal name.
_CALL_SITE = re.compile(r"FAULTS\.(?:act|hit)\(\s*[\"']([a-z._]+)[\"']")

#: Registry rows: a backticked point name at the start of a table line.
_REGISTRY_ROW = re.compile(r"^``([a-z._]+)``", re.MULTILINE)


def documented_points() -> set:
    doc = repro.faults.__doc__
    registry = doc.split("Instrumented points", 1)[1]
    return set(_REGISTRY_ROW.findall(registry))


def instrumented_points() -> set:
    points = set()
    for path in SRC_ROOT.rglob("*.py"):
        if path.name == "faults.py":
            continue  # the injector itself, not an instrumented site
        points.update(_CALL_SITE.findall(path.read_text(encoding="utf-8")))
    return points


class TestRegistryConsistency:
    def test_every_instrumented_point_is_documented(self):
        undocumented = instrumented_points() - documented_points()
        assert not undocumented, (
            f"fault points instrumented in src/ but missing from the "
            f"repro.faults docstring registry table: {sorted(undocumented)}"
        )

    def test_every_documented_point_is_instrumented(self):
        dead = documented_points() - instrumented_points()
        assert not dead, (
            f"fault points documented in the repro.faults registry table "
            f"but consulted nowhere in src/: {sorted(dead)}"
        )

    def test_registry_is_nonempty_and_has_the_core_points(self):
        documented = documented_points()
        for expected in (
            "journal.append",
            "cache.put.staging",
            "worker.run",
            "checkpoint.write",
            "checkpoint.read.corrupt",
            "cache.read.corrupt",
            "cache.scrub",
        ):
            assert expected in documented
