"""Durable solves: kill the daemon mid-solve, restart, resume — identically.

The acceptance contract of the checkpoint layer, tested against *real*
subprocess daemons (SIGKILL means SIGKILL) and the in-process scheduler:

* a solve interrupted after phase checkpoints exist resumes at the first
  unfinished phase on the next epoch and settles **bit-identical** to an
  uninterrupted cold solve (identical after removing ``runtime_s``, the
  one wall-clock field);
* a drained daemon's requeued running job resumes, not restarts;
* a cache entry with a flipped byte is never served — it is quarantined
  and the job re-solves clean;
* ``rfic-layout cache scrub`` exits non-zero on a dirty cache and zero
  after repair.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import FaultSpec, env_payload
from repro.layout.export_json import layout_to_dict
from repro.runner import LayoutJob, ResultCache
from repro.service import ServiceClient, job_to_document
from tests.chaos.conftest import make_scheduler, wait_until
from tests.conftest import build_tiny_netlist

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def pilp_document(tag=""):
    return job_to_document(
        LayoutJob(flow="pilp", netlist=build_tiny_netlist(), tag=tag)
    )


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


def normalized(doc) -> str:
    doc = json.loads(json.dumps(doc))  # deep copy
    doc.get("metadata", {}).pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


def spawn_daemon(tmp_path, name, extra_env=None, drain_grace=None):
    """``rfic-layout serve`` on an ephemeral port; returns (proc, client)."""
    port_file = tmp_path / f"{name}.port"
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
    env.pop("REPRO_FAULTS", None)
    if extra_env:
        env.update(extra_env)
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--port-file", str(port_file),
        "--data-dir", str(tmp_path / "data"),
        "--inline", "--dispatchers", "1", "--quiet",
    ]
    if drain_grace is not None:
        argv += ["--drain-grace", str(drain_grace)]
    process = subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        cwd=str(tmp_path),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            break
        if process.poll() is not None:
            raise RuntimeError(f"daemon died on startup (exit {process.returncode})")
        time.sleep(0.05)
    else:
        process.kill()
        raise RuntimeError("daemon never published its port")
    port = int(port_file.read_text().strip())
    port_file.unlink()
    return process, ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)


def cold_solve_layout_doc(document):
    """The layout the same job settles to when nothing interrupts it."""
    job = LayoutJob(
        flow="pilp", netlist=build_tiny_netlist(), tag=document["tag"]
    )
    return layout_to_dict(job.run().layout)


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_mid_solve_resumes_next_epoch_bit_identical(self, tmp_path):
        document = pilp_document("kill-resume")
        # Hold the worker asleep at the *third* checkpoint write: phase1
        # and phase2 checkpoints land, then the solve stalls with phase3
        # unfinished — the window where a crash must not lose the solve.
        faults = env_payload(
            [
                FaultSpec(
                    "checkpoint.write", action="sleep", seconds=120.0,
                    after=2, times=1,
                )
            ]
        )
        process, client = spawn_daemon(
            tmp_path, "first", extra_env={"REPRO_FAULTS": faults}
        )
        cache = ResultCache(tmp_path / "data" / "cache")
        try:
            response = client.submit_document(document)
            key = response["key"]
            # Wait until the phase2 checkpoint is durably on disk (the
            # daemon is now asleep inside the phase3 checkpoint write).
            assert wait_until(
                lambda: cache.peek_checkpoint_stage(key) == "phase2",
                timeout=60.0,
            ), "phase2 checkpoint never appeared"
        finally:
            process.kill()  # SIGKILL: no drain, no cleanup, mid-solve death
            process.wait(timeout=30)

        process, client = spawn_daemon(tmp_path, "second")
        try:
            record = client.wait(key, timeout=120.0)
            assert record["state"] == "done"
            assert record["summary"]["resumed_from_phase"] == "phase2"

            stats = client.stats()
            assert stats["resumes"]["resumed"] >= 1
            assert stats["resumes"]["checkpoint_writes"] >= 1

            trace = client.trace(key)
            worker = [s for s in trace["spans"] if s["name"] == "worker"]
            assert worker and "resumed_from_phase=phase2" in worker[0]["detail"]

            # The metrics endpoint carries the same counters.
            metrics = client.metrics_text()
            assert "rfic_solve_resumes_total 1" in metrics

            # The resumed solve settled to exactly the cold-solve layout.
            resumed_doc = client.layout_document(key)
            assert normalized(resumed_doc) == normalized(
                cold_solve_layout_doc(document)
            )
            # Settled means the partial state was cleared.
            assert cache.peek_checkpoint_stage(key) is None
        finally:
            process.kill()
            process.wait(timeout=30)


@pytest.mark.slow
class TestDrainResume:
    def test_sigterm_drain_requeues_and_next_epoch_resumes(self, tmp_path):
        document = pilp_document("drain-resume")
        # Stall the *second* checkpoint write: phase1's checkpoint lands,
        # then the worker sleeps — SIGTERM arrives with the job running.
        faults = env_payload(
            [
                FaultSpec(
                    "checkpoint.write", action="sleep", seconds=120.0,
                    after=1, times=1,
                )
            ]
        )
        process, client = spawn_daemon(
            tmp_path, "first", extra_env={"REPRO_FAULTS": faults},
            drain_grace=1.0,
        )
        cache = ResultCache(tmp_path / "data" / "cache")
        try:
            response = client.submit_document(document)
            key = response["key"]
            assert wait_until(
                lambda: cache.peek_checkpoint_stage(key) == "phase1",
                timeout=60.0,
            ), "phase1 checkpoint never appeared"
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        # The drain requeued the running job; its phase1 checkpoint
        # survived, so the next epoch resumes instead of starting cold.
        process, client = spawn_daemon(tmp_path, "second")
        try:
            record = client.wait(key, timeout=120.0)
            assert record["state"] == "done"
            assert record["summary"]["resumed_from_phase"] == "phase1"
            assert client.stats()["resumes"]["resumed"] >= 1
        finally:
            process.kill()
            process.wait(timeout=30)


class TestCorruptEntryNeverServed:
    def test_flipped_byte_requeues_and_resolves_clean(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.start()
        try:
            document = tiny_document("bitrot")
            record, disposition = scheduler.submit(document)
            assert disposition == "queued"
            assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
            assert scheduler.queue.get(record.key).state == "done"

            # Bit rot strikes the settled entry.
            layout = scheduler.cache.entry_dir(record.key) / "layout.json"
            data = bytearray(layout.read_bytes())
            data[10] ^= 0xFF
            layout.write_bytes(bytes(data))

            # Resubmission must NOT serve the corrupt bytes: the entry is
            # quarantined and the job goes back through the queue.
            record2, disposition2 = scheduler.submit(document)
            assert disposition2 == "requeued"
            assert scheduler.cache.quarantine_count() == 1
            assert wait_until(lambda: scheduler.queue.get(record2.key).terminal)
            fresh = scheduler.queue.get(record2.key)
            assert fresh.state == "done"
            assert fresh.summary["served"] == "solve"  # re-solved, not served

            # The repaired entry reads back clean now.
            assert scheduler.cache.peek_key(record.key) is not None
            assert scheduler.stats()["cache"]["quarantined"] == 1
            report = scheduler.cache.verify()
            assert report["clean"] is True
        finally:
            scheduler.stop()


class TestScrubCli:
    def test_scrub_exits_nonzero_dirty_then_zero_after_repair(self, tmp_path):
        job = LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag="cli")
        cache = ResultCache(tmp_path / "cache")
        assert cache.put(job, job.run()) is not None
        layout = cache.entry_dir(job.content_hash) / "layout.json"
        data = bytearray(layout.read_bytes())
        data[10] ^= 0xFF
        layout.write_bytes(bytes(data))

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
        env.pop("REPRO_FAULTS", None)
        argv = [
            sys.executable, "-m", "repro.cli", "cache", "scrub",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        first = subprocess.run(argv, env=env, capture_output=True, text=True)
        assert first.returncode == 1, first.stdout + first.stderr
        assert "DIRTY" in first.stdout
        second = subprocess.run(argv, env=env, capture_output=True, text=True)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "clean" in second.stdout
