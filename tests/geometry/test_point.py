"""Unit tests for points."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, collinear_axis, midpoint


class TestPointBasics:
    def test_construction_and_iteration(self):
        point = Point(3.0, 4.0)
        assert tuple(point) == (3.0, 4.0)
        assert point.as_tuple() == (3.0, 4.0)

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Point(float("inf"), 0.0)
        with pytest.raises(GeometryError):
            Point(0.0, float("nan"))

    def test_immutability(self):
        point = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            point.x = 5.0  # type: ignore[misc]

    def test_translation_and_addition(self):
        point = Point(1.0, 2.0)
        assert point.translated(2.0, -1.0) == Point(3.0, 1.0)
        assert point + Point(1.0, 1.0) == Point(2.0, 3.0)
        assert point - Point(1.0, 1.0) == Point(0.0, 1.0)

    def test_scaling(self):
        assert Point(2.0, -3.0).scaled(2.0) == Point(4.0, -6.0)


class TestDistances:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == pytest.approx(7.0)

    def test_euclidean_distance(self):
        assert Point(0, 0).euclidean_distance(Point(3, 4)) == pytest.approx(5.0)

    def test_is_close(self):
        assert Point(1.0, 1.0).is_close(Point(1.0 + 1e-9, 1.0))
        assert not Point(1.0, 1.0).is_close(Point(1.1, 1.0))

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == Point(2.0, 3.0)


class TestRotationAndMirroring:
    @pytest.mark.parametrize(
        "turns,expected",
        [(0, (2.0, 1.0)), (1, (-1.0, 2.0)), (2, (-2.0, -1.0)), (3, (1.0, -2.0)), (4, (2.0, 1.0))],
    )
    def test_rotation_about_origin(self, turns, expected):
        rotated = Point(2.0, 1.0).rotated(turns)
        assert rotated.as_tuple() == pytest.approx(expected)

    def test_rotation_about_other_point(self):
        rotated = Point(2.0, 0.0).rotated(1, about=Point(1.0, 0.0))
        assert rotated.as_tuple() == pytest.approx((1.0, 1.0))

    def test_mirroring(self):
        assert Point(3.0, 2.0).mirrored_x(0.0) == Point(-3.0, 2.0)
        assert Point(3.0, 2.0).mirrored_y(1.0) == Point(3.0, 0.0)


class TestCollinearAxis:
    def test_horizontal(self):
        assert collinear_axis(Point(0, 5), Point(9, 5)) == "h"

    def test_vertical(self):
        assert collinear_axis(Point(2, 0), Point(2, 8)) == "v"

    def test_diagonal_is_none(self):
        assert collinear_axis(Point(0, 0), Point(1, 1)) is None

    def test_coincident_points_report_horizontal(self):
        assert collinear_axis(Point(1, 1), Point(1, 1)) == "h"
