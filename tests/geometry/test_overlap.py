"""Unit tests for pairwise overlap / spacing analysis."""

import pytest

from repro.geometry import (
    Rect,
    all_inside,
    find_overlaps,
    overlap_extents,
    packing_density,
    spacing_violations,
    total_overlap_area,
)


@pytest.fixture
def rects():
    return {
        "a": Rect(0, 0, 10, 10),
        "b": Rect(8, 8, 18, 18),
        "c": Rect(30, 30, 40, 40),
    }


class TestOverlapExtents:
    def test_partial_overlap(self):
        assert overlap_extents(Rect(0, 0, 10, 10), Rect(8, 8, 18, 18)) == (2.0, 2.0)

    def test_disjoint_clipped_to_zero(self):
        extents = overlap_extents(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
        assert extents == (0.0, 0.0)


class TestFindOverlaps:
    def test_reports_only_overlapping_pairs(self, rects):
        reports = find_overlaps(rects)
        assert len(reports) == 1
        assert {reports[0].first, reports[0].second} == {"a", "b"}
        assert reports[0].area == pytest.approx(4.0)

    def test_ignore_pairs(self, rects):
        reports = find_overlaps(rects, ignore_pairs=[("b", "a")])
        assert reports == []

    def test_total_overlap_area(self, rects):
        assert total_overlap_area(rects) == pytest.approx(4.0)


class TestSpacingViolations:
    def test_close_pair_reported(self):
        rects = {"a": Rect(0, 0, 10, 10), "b": Rect(15, 0, 25, 10)}
        violations = spacing_violations(rects, required_spacing=10.0)
        assert len(violations) == 1
        assert violations[0][2] == pytest.approx(5.0)

    def test_far_pair_not_reported(self):
        rects = {"a": Rect(0, 0, 10, 10), "b": Rect(25, 0, 35, 10)}
        assert spacing_violations(rects, required_spacing=10.0) == []

    def test_ignore_pairs_respected(self):
        rects = {"a": Rect(0, 0, 10, 10), "b": Rect(12, 0, 20, 10)}
        assert (
            spacing_violations(rects, required_spacing=10.0, ignore_pairs=[("a", "b")])
            == []
        )


class TestContainmentAndDensity:
    def test_all_inside(self):
        boundary = Rect(0, 0, 100, 100)
        assert all_inside([Rect(1, 1, 50, 50)], boundary)
        assert not all_inside([Rect(90, 90, 110, 95)], boundary)

    def test_packing_density(self):
        boundary = Rect(0, 0, 10, 10)
        assert packing_density([Rect(0, 0, 5, 10)], boundary) == pytest.approx(0.5)

    def test_density_of_degenerate_boundary(self):
        assert packing_density([Rect(0, 0, 1, 1)], Rect(0, 0, 0, 0)) == 0.0
