"""Unit tests for axis-aligned microstrip segments."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Segment


class TestConstruction:
    def test_diagonal_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0), Point(3, 3))

    def test_negative_width_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0), Point(3, 0), width=-1.0)

    def test_degenerate_segment_allowed(self):
        segment = Segment(Point(1, 1), Point(1, 1))
        assert segment.is_degenerate
        assert segment.direction == "."
        assert segment.length == 0.0


class TestOrientationAndLength:
    @pytest.mark.parametrize(
        "start,end,direction,horizontal",
        [
            (Point(0, 0), Point(5, 0), "r", True),
            (Point(5, 0), Point(0, 0), "l", True),
            (Point(0, 0), Point(0, 5), "u", False),
            (Point(0, 5), Point(0, 0), "d", False),
        ],
    )
    def test_directions(self, start, end, direction, horizontal):
        segment = Segment(start, end)
        assert segment.direction == direction
        assert segment.is_horizontal is horizontal
        assert segment.length == pytest.approx(5.0)

    def test_reversed(self):
        segment = Segment(Point(0, 0), Point(5, 0))
        assert segment.reversed().direction == "l"

    def test_point_at(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at(0.5) == Point(5.0, 0.0)
        with pytest.raises(GeometryError):
            segment.point_at(1.5)


class TestOutlines:
    def test_outline_includes_width(self):
        segment = Segment(Point(0, 0), Point(10, 0), width=4.0)
        assert segment.outline().as_tuple() == (-2.0, -2.0, 12.0, 2.0)

    def test_bounding_box_adds_clearance(self):
        segment = Segment(Point(0, 0), Point(10, 0), width=4.0)
        assert segment.bounding_box(5.0).as_tuple() == (-7.0, -7.0, 17.0, 7.0)


class TestCrossing:
    def test_perpendicular_crossing(self):
        horizontal = Segment(Point(0, 5), Point(10, 5))
        vertical = Segment(Point(5, 0), Point(5, 10))
        assert horizontal.crosses(vertical)
        assert vertical.crosses(horizontal)

    def test_perpendicular_non_crossing(self):
        horizontal = Segment(Point(0, 5), Point(10, 5))
        vertical = Segment(Point(20, 0), Point(20, 10))
        assert not horizontal.crosses(vertical)

    def test_shared_endpoint_is_not_a_crossing(self):
        first = Segment(Point(0, 0), Point(5, 0))
        second = Segment(Point(5, 0), Point(5, 5))
        assert not first.crosses(second)

    def test_t_junction_through_interior_is_a_crossing(self):
        # The vertical segment ends exactly on the interior of the horizontal
        # one without sharing an endpoint: the centre-lines touch.
        horizontal = Segment(Point(0, 0), Point(10, 0))
        vertical = Segment(Point(5, 0), Point(5, 8))
        assert horizontal.crosses(vertical)

    def test_collinear_overlap_is_a_crossing(self):
        first = Segment(Point(0, 0), Point(6, 0))
        second = Segment(Point(4, 0), Point(10, 0))
        assert first.crosses(second)

    def test_collinear_disjoint_is_not(self):
        first = Segment(Point(0, 0), Point(3, 0))
        second = Segment(Point(5, 0), Point(10, 0))
        assert not first.crosses(second)

    def test_parallel_different_tracks(self):
        first = Segment(Point(0, 0), Point(5, 0))
        second = Segment(Point(0, 3), Point(5, 3))
        assert not first.crosses(second)

    def test_degenerate_never_crosses(self):
        first = Segment(Point(1, 1), Point(1, 1))
        second = Segment(Point(0, 1), Point(5, 1))
        assert not first.crosses(second)


class TestDistance:
    def test_distance_to_point_beside(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(5, 3)) == pytest.approx(3.0)

    def test_distance_to_point_beyond_end(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(13, 4)) == pytest.approx(5.0)
