"""Unit tests for rectangles and bounding boxes."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect


class TestConstruction:
    def test_from_center(self):
        rect = Rect.from_center(Point(10, 10), 4.0, 6.0)
        assert rect.as_tuple() == (8.0, 7.0, 12.0, 13.0)

    def test_from_corners_any_order(self):
        rect = Rect.from_corners(Point(5, 9), Point(1, 2))
        assert rect.as_tuple() == (1.0, 2.0, 5.0, 9.0)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            Rect(5.0, 0.0, 1.0, 2.0)
        with pytest.raises(GeometryError):
            Rect.from_center(Point(0, 0), -1.0, 2.0)

    def test_bounding_of_collection(self):
        rects = [Rect(0, 0, 2, 2), Rect(5, -1, 6, 3)]
        assert Rect.bounding(rects).as_tuple() == (0.0, -1.0, 6.0, 3.0)

    def test_bounding_of_empty_collection_rejected(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])


class TestProperties:
    def test_dimensions_and_area(self):
        rect = Rect(0, 0, 4, 3)
        assert rect.width == 4.0
        assert rect.height == 3.0
        assert rect.area == 12.0

    def test_center_and_corners(self):
        rect = Rect(0, 0, 4, 2)
        assert rect.center == Point(2.0, 1.0)
        corners = rect.corners()
        assert len(corners) == 4
        assert Point(0.0, 0.0) in corners
        assert Point(4.0, 2.0) in corners


class TestTransformations:
    def test_expansion(self):
        rect = Rect(0, 0, 2, 2).expanded(1.0)
        assert rect.as_tuple() == (-1.0, -1.0, 3.0, 3.0)

    def test_shrinking_beyond_inversion_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 2, 2).expanded(-2.0)

    def test_translation(self):
        assert Rect(0, 0, 1, 1).translated(2, 3).as_tuple() == (2.0, 3.0, 3.0, 4.0)

    def test_rotation_about_center_swaps_dimensions(self):
        rect = Rect(0, 0, 4, 2)
        rotated = rect.rotated_about_center(1)
        assert rotated.width == pytest.approx(2.0)
        assert rotated.height == pytest.approx(4.0)
        assert rotated.center == rect.center

    def test_rotation_by_180_is_identity(self):
        rect = Rect(0, 0, 4, 2)
        assert rect.rotated_about_center(2) == rect


class TestPredicates:
    def test_contains_point(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.contains_point(Point(2, 2))
        assert rect.contains_point(Point(0, 0))
        assert not rect.contains_point(Point(5, 2))
        assert Point(1, 1) in rect

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert not outer.contains_rect(Rect(5, 5, 11, 9))

    def test_overlap_with_positive_area(self):
        assert Rect(0, 0, 4, 4).overlaps(Rect(2, 2, 6, 6))

    def test_touching_edges_do_not_overlap(self):
        assert not Rect(0, 0, 4, 4).overlaps(Rect(4, 0, 8, 4))

    def test_disjoint_rectangles(self):
        assert not Rect(0, 0, 1, 1).overlaps(Rect(5, 5, 6, 6))


class TestIntersectionAndSeparation:
    def test_intersection_rect(self):
        common = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert common is not None
        assert common.as_tuple() == (2.0, 1.0, 4.0, 3.0)

    def test_intersection_of_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(3, 3, 4, 4)) is None

    def test_overlap_area(self):
        assert Rect(0, 0, 4, 4).overlap_area(Rect(2, 2, 6, 6)) == pytest.approx(4.0)
        assert Rect(0, 0, 1, 1).overlap_area(Rect(2, 2, 3, 3)) == 0.0

    def test_separation_positive_for_gap(self):
        gap = Rect(0, 0, 2, 2).separation(Rect(5, 0, 7, 2))
        assert gap == pytest.approx(3.0)

    def test_separation_negative_for_overlap(self):
        value = Rect(0, 0, 4, 4).separation(Rect(3, 0, 7, 4))
        assert value < 0

    def test_separation_diagonal_gap_is_euclidean(self):
        value = Rect(0, 0, 1, 1).separation(Rect(4, 5, 6, 7))
        assert value == pytest.approx((3.0**2 + 4.0**2) ** 0.5)
