"""Unit tests for Manhattan paths, bend counting and serpentines."""

import pytest

from repro.errors import GeometryError
from repro.geometry import ManhattanPath, Point, serpentine_path


def l_shape(width=0.0):
    return ManhattanPath([Point(0, 0), Point(100, 0), Point(100, 50)], width)


class TestConstruction:
    def test_requires_two_points(self):
        with pytest.raises(GeometryError):
            ManhattanPath([Point(0, 0)])

    def test_requires_axis_alignment(self):
        with pytest.raises(GeometryError):
            ManhattanPath([Point(0, 0), Point(3, 4)])

    def test_negative_width_rejected(self):
        with pytest.raises(GeometryError):
            ManhattanPath([Point(0, 0), Point(1, 0)], width=-1.0)


class TestMetrics:
    def test_geometric_length(self):
        assert l_shape().geometric_length == pytest.approx(150.0)

    def test_bend_count_of_l_shape(self):
        assert l_shape().bend_count == 1

    def test_straight_path_has_no_bends(self):
        path = ManhattanPath([Point(0, 0), Point(50, 0), Point(120, 0)])
        assert path.bend_count == 0

    def test_bend_points(self):
        assert l_shape().bend_points() == [Point(100.0, 0.0)]

    def test_degenerate_points_do_not_hide_bends(self):
        path = ManhattanPath(
            [Point(0, 0), Point(100, 0), Point(100, 0), Point(100, 50)]
        )
        assert path.bend_count == 1

    def test_equivalent_length_with_negative_delta(self):
        path = l_shape()
        assert path.equivalent_length(-4.0) == pytest.approx(146.0)

    def test_equivalent_length_zero_delta_equals_geometric(self):
        path = l_shape()
        assert path.equivalent_length(0.0) == pytest.approx(path.geometric_length)

    def test_u_shape_has_two_bends(self):
        path = ManhattanPath(
            [Point(0, 0), Point(0, 40), Point(60, 40), Point(60, 0)]
        )
        assert path.bend_count == 2


class TestSegmentsAndOutlines:
    def test_segments_count(self):
        assert len(l_shape().segments()) == 2

    def test_drop_degenerate_segments(self):
        path = ManhattanPath([Point(0, 0), Point(0, 0), Point(10, 0)])
        assert len(path.segments(drop_degenerate=True)) == 1

    def test_outline_rects_and_bounding_box(self):
        path = l_shape(width=10.0)
        rects = path.outline_rects()
        assert len(rects) == 2
        box = path.bounding_box()
        assert box.xl == pytest.approx(-5.0)
        assert box.yu == pytest.approx(55.0)


class TestEditing:
    def test_simplified_removes_collinear_points(self):
        path = ManhattanPath(
            [Point(0, 0), Point(30, 0), Point(60, 0), Point(60, 40)]
        )
        simplified = path.simplified()
        assert len(simplified.points) == 3
        assert simplified.bend_count == path.bend_count
        assert simplified.geometric_length == pytest.approx(path.geometric_length)

    def test_simplified_removes_coincident_points(self):
        path = ManhattanPath(
            [Point(0, 0), Point(40, 0), Point(40, 0), Point(40, 30)]
        )
        assert len(path.simplified().points) == 3

    def test_simplified_preserves_endpoints(self):
        path = ManhattanPath([Point(0, 0), Point(20, 0), Point(40, 0)])
        simplified = path.simplified()
        assert simplified.start == path.start
        assert simplified.end == path.end

    def test_insert_point(self):
        path = ManhattanPath([Point(0, 0), Point(40, 0)])
        extended = path.with_point_inserted(1, Point(20, 0))
        assert len(extended.points) == 3
        with pytest.raises(GeometryError):
            path.with_point_inserted(0, Point(20, 0))

    def test_reversed(self):
        path = l_shape()
        assert path.reversed().start == path.end


class TestSmoothing:
    def test_smoothed_vertices_replace_corner(self):
        path = l_shape()
        vertices = path.smoothed_vertices(cut=10.0)
        # One corner becomes two vertices: start, cut-in, cut-out, end.
        assert len(vertices) == 4
        assert Point(90.0, 0.0) in vertices
        assert Point(100.0, 10.0) in vertices

    def test_smoothed_straight_path_unchanged(self):
        path = ManhattanPath([Point(0, 0), Point(100, 0)])
        assert path.smoothed_vertices(cut=10.0) == [Point(0, 0), Point(100, 0)]

    def test_negative_cut_rejected(self):
        with pytest.raises(GeometryError):
            l_shape().smoothed_vertices(cut=-1.0)


class TestSerpentine:
    def test_direct_length_when_no_extra_needed(self):
        path = serpentine_path(Point(0, 0), Point(100, 50), target_length=150.0)
        assert path.geometric_length == pytest.approx(150.0)

    def test_extra_length_is_absorbed(self):
        path = serpentine_path(Point(0, 0), Point(100, 50), target_length=300.0)
        assert path.geometric_length == pytest.approx(300.0, abs=1.0)

    def test_serpentine_adds_bends(self):
        direct = serpentine_path(Point(0, 0), Point(100, 50), target_length=150.0)
        detoured = serpentine_path(Point(0, 0), Point(100, 50), target_length=400.0)
        assert detoured.bend_count > direct.bend_count

    def test_target_shorter_than_direct_rejected(self):
        with pytest.raises(GeometryError):
            serpentine_path(Point(0, 0), Point(100, 0), target_length=50.0)

    def test_vertical_connection(self):
        path = serpentine_path(Point(50, 0), Point(50, 200), target_length=320.0)
        assert path.geometric_length == pytest.approx(320.0, abs=1.0)
        assert path.start.is_close(Point(50, 0))
        assert path.end.is_close(Point(50, 200))

    def test_endpoints_always_preserved(self):
        path = serpentine_path(Point(10, 20), Point(210, 90), target_length=500.0)
        assert path.start.is_close(Point(10, 20))
        assert path.end.is_close(Point(210, 90))
