"""Unit tests of the structured JSON-lines logger."""

import io
import json

import pytest

from repro.obs.logging import KEY_PREFIX_LEN, JsonLogger


@pytest.fixture
def logger():
    instance = JsonLogger()
    yield instance
    instance.disable()


def test_disabled_logger_writes_nothing(logger):
    # No configure() call: log() must be a no-op, not an error.
    logger.log("job.settled", key="a" * 64)
    assert not logger.enabled


def test_lines_are_one_json_object_each(logger):
    sink = io.StringIO()
    logger.configure(stream=sink)
    logger.log("job.submit", trace="trace01", key="c" * 64, disposition="queued")
    logger.log("job.settled", level="error", error="boom")
    lines = sink.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "job.submit"
    assert first["level"] == "info"
    assert first["trace"] == "trace01"
    assert first["key"] == "c" * KEY_PREFIX_LEN  # 12-char prefix only
    assert first["disposition"] == "queued"
    assert first["ts"] > 0
    second = json.loads(lines[1])
    assert second["level"] == "error"
    assert second["error"] == "boom"
    assert "trace" not in second  # empty correlation fields are omitted


def test_none_valued_fields_are_dropped(logger):
    sink = io.StringIO()
    logger.configure(stream=sink)
    logger.log("job.settled", error=None, runtime_s=1.5)
    record = json.loads(sink.getvalue())
    assert "error" not in record
    assert record["runtime_s"] == 1.5


def test_file_sink(tmp_path, logger):
    path = tmp_path / "service.log"
    logger.configure(stream=io.StringIO(), path=str(path))
    logger.log("daemon.start", dispatchers=2)
    logger.disable()
    record = json.loads(path.read_text(encoding="utf-8"))
    assert record["event"] == "daemon.start"
    assert record["dispatchers"] == 2


def test_closed_sink_does_not_raise(logger):
    sink = io.StringIO()
    logger.configure(stream=sink)
    sink.close()
    logger.log("job.settled")  # swallowed, never raises


def test_disable_stops_output(logger):
    sink = io.StringIO()
    logger.configure(stream=sink)
    logger.disable()
    logger.log("job.settled")
    assert sink.getvalue() == ""
