"""SLO monitor math, pinned exactly under an injected clock."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.slo import SLOConfig, SLOMonitor, SLOPoint
from repro.obs.trace import CLOCK


@pytest.fixture
def clock():
    state = {"now": 1000.0}
    CLOCK.install(wall=lambda: state["now"], monotonic=lambda: state["now"])
    yield state
    CLOCK.clear()


def buckets(*observations):
    """Cumulative [le, count] pairs as a Histogram snapshot would emit."""
    counts = [0] * (len(DEFAULT_LATENCY_BUCKETS) + 1)
    for value in observations:
        slot = len(DEFAULT_LATENCY_BUCKETS)
        for i, bound in enumerate(DEFAULT_LATENCY_BUCKETS):
            if value <= bound:
                slot = i
                break
        counts[slot] += 1
    cumulative, running = [], 0
    for bound, count in zip(DEFAULT_LATENCY_BUCKETS, counts):
        running += count
        cumulative.append([bound, running])
    cumulative.append([math.inf, running + counts[-1]])
    return cumulative


def point(good, bad, observations=()):
    return SLOPoint.capture(
        good_total=good,
        bad_total=bad,
        latency_buckets=buckets(*observations),
        latency_count=len(observations),
    )


class TestConfig:
    def test_unconfigured_by_default(self):
        assert not SLOConfig().configured

    def test_either_objective_configures(self):
        assert SLOConfig(availability_objective=0.99).configured
        assert SLOConfig(latency_p95_target_s=5.0).configured

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_bad_availability_rejected(self, objective):
        with pytest.raises(ConfigurationError):
            SLOConfig(availability_objective=objective)

    def test_bad_latency_and_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SLOConfig(latency_p95_target_s=0.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(window_s=-1.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(window_s=10.0, sample_interval_s=60.0)


class TestBurnRate:
    def test_burn_rate_math_pinned(self, clock):
        # Objective 0.9 leaves a 10% error budget.  90 good + 10 bad in
        # the window is a 10% bad fraction: burning the budget at exactly
        # the sustainable rate, burn = 1.0.
        monitor = SLOMonitor(SLOConfig(availability_objective=0.9))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(90, 10))
        availability = doc["availability"]
        assert availability["ratio"] == pytest.approx(0.9)
        assert availability["burn_rate"] == pytest.approx(1.0)
        assert availability["good"] == 90
        assert availability["bad"] == 10
        assert availability["ok"] is True  # ratio meets the objective
        assert doc["window_span_s"] == pytest.approx(60.0)

    def test_burn_rate_scales_with_bad_fraction(self, clock):
        # 30% bad against a 10% budget burns 3x sustainable; the
        # objective is violated outright.
        monitor = SLOMonitor(SLOConfig(availability_objective=0.9))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(70, 30))
        availability = doc["availability"]
        assert availability["burn_rate"] == pytest.approx(3.0)
        assert availability["ok"] is False
        assert doc["ok"] is False

    def test_idle_window_meets_objective(self, clock):
        monitor = SLOMonitor(SLOConfig(availability_objective=0.999))
        monitor.record(point(500, 5))
        clock["now"] = 1100.0
        # No traffic since the baseline: nothing was failed.
        doc = monitor.evaluate(point(500, 5))
        availability = doc["availability"]
        assert availability["ratio"] == 1.0
        assert availability["burn_rate"] == 0.0
        assert doc["ok"] is True

    def test_window_excludes_ancient_failures(self, clock):
        # 100 bad admissions long ago must roll out of the window: only
        # deltas against the retained baseline count.
        monitor = SLOMonitor(
            SLOConfig(availability_objective=0.9, window_s=300.0)
        )
        monitor.record(point(0, 100))
        clock["now"] = 1200.0
        monitor.record(point(50, 100))
        clock["now"] = 1700.0  # first point now older than the window
        doc = monitor.evaluate(point(150, 100))
        availability = doc["availability"]
        assert availability["bad"] == 0
        assert availability["ratio"] == 1.0

    def test_evaluate_before_any_sample_is_trivially_ok(self, clock):
        monitor = SLOMonitor(SLOConfig(availability_objective=0.9))
        doc = monitor.evaluate(point(10, 90))
        # The point is its own baseline: zero deltas, no verdict drama.
        assert doc["availability"]["ratio"] == 1.0
        assert doc["ok"] is True


class TestLatencyObjective:
    def test_windowed_p95_within_target(self, clock):
        monitor = SLOMonitor(SLOConfig(latency_p95_target_s=5.0))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(40, 0, observations=[0.2] * 20))
        latency = doc["latency"]
        assert latency["count"] == 20
        lower, upper = latency["p95_bounds_s"]
        assert lower < 0.2 <= upper
        assert latency["ok"] is True

    def test_p95_bucket_wholly_past_target_violates(self, clock):
        monitor = SLOMonitor(SLOConfig(latency_p95_target_s=1.0))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(40, 0, observations=[8.0] * 20))
        latency = doc["latency"]
        assert latency["p95_bounds_s"][0] >= 1.0
        assert latency["ok"] is False
        assert doc["ok"] is False

    def test_target_inside_p95_bucket_gets_benefit_of_doubt(self, clock):
        # Observations land in the (2.5, 5.0] bucket; a 3s target falls
        # inside it.  Inconclusive must not flap the alarm.
        monitor = SLOMonitor(SLOConfig(latency_p95_target_s=3.0))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(40, 0, observations=[4.0] * 20))
        latency = doc["latency"]
        lower, upper = latency["p95_bounds_s"]
        assert lower < 3.0 <= upper
        assert latency["ok"] is True

    def test_old_observations_roll_out_of_window(self, clock):
        # Slow observations before the window must not poison the
        # current p95: bucket deltas see only the fast recent ones.
        monitor = SLOMonitor(
            SLOConfig(latency_p95_target_s=1.0, window_s=300.0)
        )
        slow = point(20, 0, observations=[60.0] * 20)
        monitor.record(slow)
        clock["now"] = 1400.0
        monitor.record(point(20, 0, observations=[60.0] * 20))
        clock["now"] = 1700.0
        fast_totals = SLOPoint.capture(
            good_total=40,
            bad_total=0,
            latency_buckets=buckets(*([60.0] * 20 + [0.1] * 20)),
            latency_count=40,
        )
        doc = monitor.evaluate(fast_totals)
        latency = doc["latency"]
        assert latency["count"] == 20
        assert latency["p95_bounds_s"][1] <= 1.0
        assert latency["ok"] is True

    def test_no_observations_in_window_is_ok(self, clock):
        monitor = SLOMonitor(SLOConfig(latency_p95_target_s=1.0))
        monitor.record(point(0, 0))
        clock["now"] = 1060.0
        doc = monitor.evaluate(point(5, 0))
        assert doc["latency"]["p95_bounds_s"] is None
        assert doc["latency"]["ok"] is True


class TestWindowPruning:
    def test_retains_one_point_older_than_window(self, clock):
        monitor = SLOMonitor(
            SLOConfig(availability_objective=0.9, window_s=100.0)
        )
        for i in range(10):
            clock["now"] = 1000.0 + i * 50.0
            monitor.record(point(i * 10, 0))
        # Window is 100s: the retained deque spans at most the window
        # plus one straggler baseline.
        assert len(monitor._points) <= 4
        doc = monitor.evaluate(point(100, 0))
        assert doc["window_span_s"] <= 150.0
