"""Unit tests of the metrics registry and Prometheus exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.gauge("state", labels={"state": "queued"})
        b = registry.gauge("state", labels={"state": "running"})
        a.set(1)
        b.set(2)
        assert (a.value, b.value) == (1, 2)


class TestHistogram:
    def test_observe_and_cumulative_snapshot(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        # Cumulative counts ending at +Inf.
        assert snap["buckets"] == [[0.1, 1], [1.0, 3], [math.inf, 4]]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_bucket_mismatch_on_reregistration(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_hammer_is_exact(self):
        """32 threads x 1000 updates: nothing lost under the shared lock."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        hist = registry.histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)

        def worker():
            for i in range(1000):
                counter.inc()
                hist.observe(0.001 * (i % 50))

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 32000
        assert hist.snapshot()["count"] == 32000


class TestSnapshotAndExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("rfic_solved_total", "Jobs solved").inc(3)
        registry.gauge("rfic_depth", "Queue depth").set(2)
        hist = registry.histogram(
            "rfic_latency_seconds", "Latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(2.0)
        registry.counter(
            "rfic_state_total", labels={"state": "done"}
        ).inc(1)
        return registry

    def test_snapshot_is_coherent_and_sorted(self):
        snap = self._populated().snapshot()
        assert list(snap) == sorted(snap)
        latency = snap["rfic_latency_seconds"]["samples"][0]
        assert latency["count"] == 2
        assert latency["buckets"][-1][0] == math.inf
        assert latency["buckets"][-1][1] == 2

    def test_render_parse_round_trip(self):
        text = render_prometheus(self._populated().snapshot())
        assert "# TYPE rfic_latency_seconds histogram" in text
        assert 'rfic_latency_seconds_bucket{le="+Inf"} 2' in text
        assert 'rfic_state_total{state="done"} 1' in text
        families = parse_prometheus(text)
        assert families["rfic_solved_total"]["kind"] == "counter"
        latency = families["rfic_latency_seconds"]
        assert latency["kind"] == "histogram"
        # Suffixed samples fold back into the histogram family.
        names = {sample["name"] for sample in latency["samples"]}
        assert "rfic_latency_seconds_bucket" in names
        assert "rfic_latency_seconds_count" in names

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("this is { not metrics\n")
        with pytest.raises(ValueError, match="bad value"):
            parse_prometheus("rfic_x pancake\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"p": 'a"b\\c'}).inc()
        text = render_prometheus(registry.snapshot())
        families = parse_prometheus(text)
        sample = families["c_total"]["samples"][0]
        assert sample["labels"]["p"] == 'a"b\\c'


class TestHistogramQuantile:
    def test_bracket_bounds(self):
        buckets = [[0.1, 2], [1.0, 8], [math.inf, 10]]
        assert histogram_quantile(buckets, 10, 0.5) == (0.1, 1.0)
        assert histogram_quantile(buckets, 10, 0.1) == (0.0, 0.1)
        assert histogram_quantile(buckets, 10, 0.99) == (1.0, math.inf)

    def test_empty_histogram_returns_none(self):
        assert histogram_quantile([], 0, 0.5) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile([[math.inf, 1]], 1, 1.5)
        with pytest.raises(ValueError):
            histogram_quantile([[math.inf, 1]], 1, -0.01)

    # The SLO monitor leans on these paths harder than /stats ever did:
    # windowed bucket *deltas* routinely produce empty, overflow-only,
    # and boundary-quantile shapes.

    def test_empty_buckets_with_zero_count(self):
        # An all-zero cumulative list (a window delta with no traffic)
        # must read as "no data", exactly like a missing histogram.
        buckets = [[0.1, 0], [1.0, 0], [math.inf, 0]]
        assert histogram_quantile(buckets, 0, 0.95) is None

    def test_all_observations_in_overflow_bucket(self):
        # Every observation past the last finite bound: the quantile
        # bracket is (last_bound, inf) for any q — an unbounded upper
        # bound the SLO layer must treat as "cannot prove it's fast".
        buckets = [[0.1, 0], [1.0, 0], [math.inf, 7]]
        assert histogram_quantile(buckets, 7, 0.5) == (1.0, math.inf)
        assert histogram_quantile(buckets, 7, 0.95) == (1.0, math.inf)

    def test_quantile_zero_bound(self):
        # q=0 has rank 0: the first non-empty bucket brackets it.
        buckets = [[0.1, 0], [1.0, 4], [math.inf, 10]]
        assert histogram_quantile(buckets, 10, 0.0) == (0.1, 1.0)

    def test_quantile_one_bound(self):
        # q=1 has rank == count: the bucket holding the max observation.
        buckets = [[0.1, 2], [1.0, 8], [math.inf, 10]]
        assert histogram_quantile(buckets, 10, 1.0) == (1.0, math.inf)
        # ...and when everything fits under a finite bound, q=1 stays
        # finite too.
        buckets = [[0.1, 2], [1.0, 10], [math.inf, 10]]
        assert histogram_quantile(buckets, 10, 1.0) == (0.1, 1.0)

    def test_single_observation_histogram(self):
        buckets = [[0.1, 1], [1.0, 1], [math.inf, 1]]
        assert histogram_quantile(buckets, 1, 0.0) == (0.0, 0.1)
        assert histogram_quantile(buckets, 1, 0.95) == (0.0, 0.1)
        assert histogram_quantile(buckets, 1, 1.0) == (0.0, 0.1)
