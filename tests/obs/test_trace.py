"""Unit tests of the trace store, span records, and injectable clock."""

import re

import pytest

from repro.obs.trace import CLOCK, JobTrace, Span, TraceStore, mint_trace_id


class TestTraceClock:
    def test_real_clocks_by_default(self):
        assert not CLOCK.installed
        assert CLOCK.time() > 0
        assert CLOCK.perf() >= 0

    def test_install_makes_spans_deterministic(self):
        ticks = iter(range(100))
        CLOCK.install(wall=lambda: 1000.0, monotonic=lambda: float(next(ticks)))
        try:
            assert CLOCK.installed
            assert CLOCK.time() == 1000.0
            start = CLOCK.perf()
            assert CLOCK.perf() - start == 1.0
        finally:
            CLOCK.clear()
        assert not CLOCK.installed


class TestMintTraceId:
    def test_format_and_uniqueness(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert re.fullmatch(r"[0-9a-f]{16}", trace_id)


class TestSpan:
    def test_to_dict_omits_empty_fields(self):
        doc = Span("solve", 100.0, 0.25).to_dict()
        assert doc == {"name": "solve", "start_unix": 100.0, "duration_s": 0.25}

    def test_to_dict_keeps_parent_detail_truncated(self):
        doc = Span(
            "solve.phase1", 100.0, 0.25, parent="worker",
            detail="highs", truncated=True,
        ).to_dict()
        assert doc["parent"] == "worker"
        assert doc["detail"] == "highs"
        assert doc["truncated"] is True


class TestTraceStore:
    def test_begin_span_get(self):
        store = TraceStore()
        store.begin("k1", "trace01", label="tiny")
        store.span("k1", "admission", 100.0, 0.001)
        trace = store.get("k1")
        assert isinstance(trace, JobTrace)
        assert trace.trace_id == "trace01"
        assert [span.name for span in trace.spans] == ["admission"]

    def test_begin_is_idempotent_and_accumulates(self):
        store = TraceStore()
        store.begin("k1", "trace01")
        store.span("k1", "admission", 100.0, 0.001)
        store.settle("k1")
        # A requeue re-begins the same key: spans accumulate, not reset.
        trace = store.begin("k1", "")
        assert trace.trace_id == "trace01"
        assert not trace.settled
        store.span("k1", "queue_wait", 101.0, 0.5)
        assert [span.name for span in store.get("k1").spans] == [
            "admission", "queue_wait",
        ]

    def test_span_for_unknown_key_is_a_noop(self):
        store = TraceStore()
        store.span("missing", "admission", 100.0, 0.001)
        assert store.get("missing") is None

    def test_negative_durations_clamped(self):
        store = TraceStore()
        store.begin("k1", "t")
        store.span("k1", "admission", 100.0, -5.0)
        assert store.get("k1").spans[0].duration_s == 0.0

    def test_eviction_only_drops_settled_traces(self):
        store = TraceStore(limit=4)
        for i in range(4):
            store.begin(f"settled-{i}", "t")
            store.settle(f"settled-{i}")
        store.begin("live", "t")  # fifth entry, unsettled
        # Settling anything past the limit evicts the oldest *settled*.
        store.begin("another", "t")
        store.settle("another")
        assert len(store) <= 5
        assert store.get("live") is not None
        assert store.get("settled-0") is None


@pytest.mark.parametrize("count", [1, 3])
def test_store_len(count):
    store = TraceStore()
    for i in range(count):
        store.begin(f"k{i}", "t")
    assert len(store) == count
