"""Shared fixtures for the test-suite.

The expensive fixtures (anything that invokes the MILP solver on a full
flow) are session-scoped so the cost is paid once; all assertions about the
resulting layouts reuse the same solved object.
"""

from __future__ import annotations

import pytest

from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_capacitor,
    make_dc_pad,
    make_rf_pad,
    make_transistor,
)
from repro.core import PILPConfig
from repro.core.config import PhaseSettings
from repro.geometry import ManhattanPath, Point
from repro.layout import Layout, Placement, RoutedMicrostrip
from repro.tech import CMOS90


# --------------------------------------------------------------------------- #
# netlists
# --------------------------------------------------------------------------- #


def build_tiny_netlist(area: LayoutArea | None = None) -> Netlist:
    """Two pads, one transistor, two microstrips — the smallest real circuit."""
    devices = [
        make_rf_pad("P_IN"),
        make_rf_pad("P_OUT"),
        make_transistor("M1"),
    ]
    nets = [
        MicrostripNet(
            "ms_in", Terminal("P_IN", "SIG"), Terminal("M1", "G"), target_length=250.0
        ),
        MicrostripNet(
            "ms_out", Terminal("M1", "D"), Terminal("P_OUT", "SIG"), target_length=300.0
        ),
    ]
    return Netlist(
        "tiny",
        devices,
        nets,
        area or LayoutArea(400.0, 300.0),
        technology=CMOS90,
        operating_frequency_ghz=94.0,
    )


def build_small_netlist(area: LayoutArea | None = None) -> Netlist:
    """A five-net, six-device single-stage circuit with a bias branch."""
    devices = [
        make_rf_pad("P_IN"),
        make_rf_pad("P_OUT"),
        make_dc_pad("P_VDD"),
        make_transistor("M1"),
        make_transistor("M2"),
        make_capacitor("C1"),
    ]
    nets = [
        MicrostripNet("ms1", Terminal("P_IN", "SIG"), Terminal("M1", "G"), target_length=260.0),
        MicrostripNet("ms2", Terminal("M1", "D"), Terminal("C1", "P1"), target_length=180.0),
        MicrostripNet("ms3", Terminal("C1", "P2"), Terminal("M2", "G"), target_length=200.0),
        MicrostripNet("ms4", Terminal("M2", "D"), Terminal("P_OUT", "SIG"), target_length=280.0),
        MicrostripNet("ms5", Terminal("P_VDD", "SIG"), Terminal("M1", "D"), target_length=220.0),
    ]
    return Netlist(
        "small5",
        devices,
        nets,
        area or LayoutArea(600.0, 450.0),
        technology=CMOS90,
        operating_frequency_ghz=60.0,
    )


@pytest.fixture
def tiny_netlist() -> Netlist:
    return build_tiny_netlist()


@pytest.fixture
def small_netlist() -> Netlist:
    return build_small_netlist()


@pytest.fixture(scope="session")
def session_tiny_netlist() -> Netlist:
    return build_tiny_netlist()


@pytest.fixture(scope="session")
def session_small_netlist() -> Netlist:
    return build_small_netlist()


# --------------------------------------------------------------------------- #
# configurations
# --------------------------------------------------------------------------- #


def build_test_config() -> PILPConfig:
    """A configuration small enough for CI: short limits, few iterations."""
    return PILPConfig.fast().with_updates(
        phase1=PhaseSettings(time_limit=16.0, mip_gap=0.1),
        phase2=PhaseSettings(time_limit=16.0, mip_gap=0.1),
        phase3=PhaseSettings(time_limit=12.0, mip_gap=0.1),
        exact=PhaseSettings(time_limit=25.0, mip_gap=0.05),
        max_refinement_iterations=3,
    )


@pytest.fixture
def test_config() -> PILPConfig:
    return build_test_config()


@pytest.fixture(scope="session")
def session_config() -> PILPConfig:
    return build_test_config()


# --------------------------------------------------------------------------- #
# solved flows (session scoped — these invoke the MILP solver)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def exact_tiny_result(session_tiny_netlist, session_config):
    """The exact (Section 4) flow solved once on the tiny circuit."""
    from repro.core import ExactLayoutGenerator

    return ExactLayoutGenerator(session_config).generate(session_tiny_netlist)


@pytest.fixture(scope="session")
def pilp_small_result(session_small_netlist, session_config):
    """The progressive flow solved once on the five-net circuit."""
    from repro.core import PILPLayoutGenerator

    return PILPLayoutGenerator(session_config).generate(session_small_netlist)


@pytest.fixture(scope="session")
def manual_small_result(session_small_netlist):
    """The manual-like baseline run once on the five-net circuit."""
    from repro.baselines import AnnealingConfig, ManualLikeFlow

    return ManualLikeFlow(AnnealingConfig(iterations=2500)).generate(session_small_netlist)


# --------------------------------------------------------------------------- #
# hand-built layouts (no solver involved)
# --------------------------------------------------------------------------- #


@pytest.fixture
def hand_layout(tiny_netlist) -> Layout:
    """A hand-constructed, DRC-relevant layout of the tiny netlist."""
    layout = Layout(tiny_netlist)
    layout.set_placement(Placement("P_IN", Point(30.0, 150.0)))
    layout.set_placement(Placement("P_OUT", Point(370.0, 150.0)))
    layout.set_placement(Placement("M1", Point(200.0, 150.0)))
    gate = layout.pin_position("M1", "G")
    drain = layout.pin_position("M1", "D")
    pad_in = layout.pin_position("P_IN", "SIG")
    pad_out = layout.pin_position("P_OUT", "SIG")
    layout.set_route(
        RoutedMicrostrip(
            "ms_in",
            ManhattanPath([pad_in, Point(gate.x, pad_in.y), gate], width=10.0),
        )
    )
    layout.set_route(
        RoutedMicrostrip(
            "ms_out",
            ManhattanPath([drain, Point(pad_out.x, drain.y), pad_out], width=10.0),
        )
    )
    return layout
