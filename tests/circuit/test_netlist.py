"""Unit tests for the netlist container."""

import networkx as nx
import pytest

from repro.errors import NetlistError
from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_rf_pad,
    make_transistor,
)
from tests.conftest import build_small_netlist, build_tiny_netlist


class TestLayoutArea:
    def test_properties(self):
        area = LayoutArea(890.0, 615.0)
        assert area.area == pytest.approx(890.0 * 615.0)
        assert area.aspect_ratio == pytest.approx(890.0 / 615.0)
        assert area.rect.as_tuple() == (0.0, 0.0, 890.0, 615.0)

    def test_invalid_dimensions(self):
        with pytest.raises(NetlistError):
            LayoutArea(0.0, 100.0)

    def test_scaling(self):
        scaled = LayoutArea(100.0, 50.0).scaled(0.5)
        assert scaled.as_tuple() == (50.0, 25.0)
        with pytest.raises(NetlistError):
            LayoutArea(10, 10).scaled(0.0)


class TestNetlistConstruction:
    def test_counts(self):
        netlist = build_small_netlist()
        assert netlist.num_devices == 6
        assert netlist.num_microstrips == 5

    def test_duplicate_device_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(
                "dup",
                [make_rf_pad("P"), make_rf_pad("P")],
                [],
                LayoutArea(100, 100),
            )

    def test_duplicate_net_rejected(self):
        devices = [make_rf_pad("P1"), make_rf_pad("P2")]
        net = MicrostripNet("m", Terminal("P1", "SIG"), Terminal("P2", "SIG"), 100.0)
        with pytest.raises(NetlistError):
            Netlist("dup", devices, [net, net], LayoutArea(300, 300))

    def test_dangling_device_reference_rejected(self):
        net = MicrostripNet("m", Terminal("GHOST", "SIG"), Terminal("P2", "SIG"), 100.0)
        with pytest.raises(NetlistError):
            Netlist("bad", [make_rf_pad("P2")], [net], LayoutArea(300, 300))

    def test_dangling_pin_reference_rejected(self):
        net = MicrostripNet("m", Terminal("P1", "NOPE"), Terminal("P2", "SIG"), 100.0)
        with pytest.raises(NetlistError):
            Netlist(
                "bad", [make_rf_pad("P1"), make_rf_pad("P2")], [net], LayoutArea(300, 300)
            )

    def test_invalid_frequency(self):
        with pytest.raises(NetlistError):
            Netlist("bad", [], [], LayoutArea(10, 10), operating_frequency_ghz=0.0)


class TestNetlistQueries:
    def test_lookup(self):
        netlist = build_tiny_netlist()
        assert netlist.device("M1").name == "M1"
        assert netlist.microstrip("ms_in").name == "ms_in"
        with pytest.raises(NetlistError):
            netlist.device("nope")
        with pytest.raises(NetlistError):
            netlist.microstrip("nope")

    def test_pads_and_non_pads(self):
        netlist = build_small_netlist()
        assert {device.name for device in netlist.pads()} == {"P_IN", "P_OUT", "P_VDD"}
        assert len(netlist.non_pads()) == 3

    def test_microstrips_at(self):
        netlist = build_small_netlist()
        names = {net.name for net in netlist.microstrips_at("M1")}
        assert names == {"ms1", "ms2", "ms5"}

    def test_microstrip_width_defaults_to_technology(self):
        netlist = build_tiny_netlist()
        assert netlist.microstrip_width("ms_in") == netlist.technology.microstrip_width

    def test_total_target_length(self):
        netlist = build_tiny_netlist()
        assert netlist.total_target_length() == pytest.approx(550.0)

    def test_connectivity_graph(self):
        netlist = build_small_netlist()
        graph = netlist.connectivity_graph()
        assert isinstance(graph, nx.MultiGraph)
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 5

    def test_with_area_preserves_content(self):
        netlist = build_tiny_netlist()
        resized = netlist.with_area(LayoutArea(500, 500))
        assert resized.num_devices == netlist.num_devices
        assert resized.area.width == 500.0
        assert netlist.area.width == 400.0

    def test_summary_fields(self):
        summary = build_small_netlist().summary()
        assert summary["num_microstrips"] == 5
        assert summary["num_devices"] == 6
        assert summary["area_um"] == "600x450"
        assert 0 < summary["area_utilisation"] < 1
