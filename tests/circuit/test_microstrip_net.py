"""Unit tests for microstrip nets and terminals."""

import pytest

from repro.errors import NetlistError
from repro.circuit import MicrostripNet, Terminal


def net(**overrides):
    values = dict(
        name="ms1",
        start=Terminal("A", "P1"),
        end=Terminal("B", "P2"),
        target_length=200.0,
    )
    values.update(overrides)
    return MicrostripNet(**values)


class TestTerminal:
    def test_as_tuple(self):
        assert Terminal("A", "P1").as_tuple() == ("A", "P1")

    def test_empty_names_rejected(self):
        with pytest.raises(NetlistError):
            Terminal("", "P1")
        with pytest.raises(NetlistError):
            Terminal("A", "")


class TestMicrostripNet:
    def test_basic_construction(self):
        microstrip = net()
        assert microstrip.terminals == (Terminal("A", "P1"), Terminal("B", "P2"))

    @pytest.mark.parametrize("length", [0.0, -5.0, float("nan")])
    def test_invalid_target_length(self, length):
        with pytest.raises(NetlistError):
            net(target_length=length)

    def test_invalid_width(self):
        with pytest.raises(NetlistError):
            net(width=0.0)

    def test_too_few_chain_points(self):
        with pytest.raises(NetlistError):
            net(max_chain_points=1)

    def test_self_loop_rejected(self):
        with pytest.raises(NetlistError):
            net(end=Terminal("A", "P1"))

    def test_connects(self):
        microstrip = net()
        assert microstrip.connects("A")
        assert microstrip.connects("B")
        assert not microstrip.connects("C")

    def test_other_terminal(self):
        microstrip = net()
        assert microstrip.other_terminal("A") == Terminal("B", "P2")
        with pytest.raises(NetlistError):
            microstrip.other_terminal("C")

    def test_serialisation_round_trip(self):
        original = net(width=12.0, max_chain_points=5, impedance_ohm=60.0)
        rebuilt = MicrostripNet.from_dict(original.as_dict())
        assert rebuilt == original

    def test_malformed_record(self):
        with pytest.raises(NetlistError):
            MicrostripNet.from_dict({"name": "x"})
