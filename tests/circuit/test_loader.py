"""Unit tests for netlist JSON serialisation."""

import json

import pytest

from repro.errors import NetlistError
from repro.circuit import (
    dumps_netlist,
    load_netlist,
    loads_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from tests.conftest import build_small_netlist


class TestRoundTrip:
    def test_dict_round_trip(self):
        netlist = build_small_netlist()
        rebuilt = netlist_from_dict(netlist_to_dict(netlist))
        assert rebuilt.name == netlist.name
        assert rebuilt.num_devices == netlist.num_devices
        assert rebuilt.num_microstrips == netlist.num_microstrips
        assert rebuilt.area.as_tuple() == netlist.area.as_tuple()
        assert rebuilt.technology == netlist.technology
        assert rebuilt.microstrip("ms1").target_length == pytest.approx(260.0)

    def test_string_round_trip(self):
        netlist = build_small_netlist()
        text = dumps_netlist(netlist)
        rebuilt = loads_netlist(text)
        assert rebuilt.device_names == netlist.device_names

    def test_file_round_trip(self, tmp_path):
        netlist = build_small_netlist()
        path = save_netlist(netlist, tmp_path / "circuit.json")
        assert path.exists()
        rebuilt = load_netlist(path)
        assert rebuilt.microstrip_names == netlist.microstrip_names

    def test_document_is_valid_json_with_schema_version(self, tmp_path):
        netlist = build_small_netlist()
        path = save_netlist(netlist, tmp_path / "circuit.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert data["name"] == "small5"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(NetlistError):
            load_netlist(tmp_path / "missing.json")

    def test_invalid_json_text(self):
        with pytest.raises(NetlistError):
            loads_netlist("{not json")

    def test_unsupported_schema_version(self):
        data = netlist_to_dict(build_small_netlist())
        data["schema_version"] = 99
        with pytest.raises(NetlistError):
            netlist_from_dict(data)

    def test_missing_required_field(self):
        data = netlist_to_dict(build_small_netlist())
        del data["area"]
        with pytest.raises(NetlistError):
            netlist_from_dict(data)
