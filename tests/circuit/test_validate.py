"""Unit tests for netlist validation checks."""

import pytest

from repro.errors import NetlistError
from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Severity,
    Terminal,
    assert_valid,
    make_capacitor,
    make_rf_pad,
    make_transistor,
    validate_netlist,
)
from tests.conftest import build_small_netlist, build_tiny_netlist


def issue_codes(netlist):
    return {issue.code for issue in validate_netlist(netlist)}


class TestCleanNetlists:
    def test_small_netlist_has_no_errors(self):
        issues = validate_netlist(build_small_netlist())
        assert not [issue for issue in issues if issue.severity is Severity.ERROR]

    def test_assert_valid_passes(self):
        assert_valid(build_tiny_netlist())


class TestDeviceSizeCheck:
    def test_oversized_device_is_an_error(self):
        huge = make_capacitor("C_HUGE", width=500.0, height=500.0)
        netlist = Netlist("bad", [huge], [], LayoutArea(200.0, 200.0))
        assert "device-too-large" in issue_codes(netlist)
        with pytest.raises(NetlistError):
            assert_valid(netlist)

    def test_rotatable_fit_is_accepted(self):
        # 180 x 80 does not fit a 100 x 200 area directly but does when rotated.
        tall = make_capacitor("C1", width=180.0, height=80.0)
        netlist = Netlist("ok", [tall], [], LayoutArea(100.0, 200.0))
        assert "device-too-large" not in issue_codes(netlist)


class TestPadChecks:
    def test_no_pads_warning(self):
        netlist = Netlist(
            "nopads", [make_transistor("M1")], [], LayoutArea(300.0, 300.0)
        )
        assert "no-pads" in issue_codes(netlist)

    def test_too_many_pads_error(self):
        pads = [make_rf_pad(f"P{i}", size=90.0) for i in range(20)]
        netlist = Netlist("padwall", pads, [], LayoutArea(200.0, 200.0))
        assert "pads-exceed-perimeter" in issue_codes(netlist)


class TestLengthChecks:
    def test_unreachable_length_error(self):
        devices = [make_rf_pad("P1"), make_rf_pad("P2")]
        net = MicrostripNet("m", Terminal("P1", "SIG"), Terminal("P2", "SIG"), 9000.0)
        netlist = Netlist("long", devices, [net], LayoutArea(300.0, 300.0))
        assert "length-unreachable" in issue_codes(netlist)

    def test_length_below_width_warning(self):
        devices = [make_rf_pad("P1"), make_rf_pad("P2")]
        net = MicrostripNet("m", Terminal("P1", "SIG"), Terminal("P2", "SIG"), 5.0)
        netlist = Netlist("short", devices, [net], LayoutArea(300.0, 300.0))
        assert "length-below-width" in issue_codes(netlist)


class TestConnectivityChecks:
    def test_unconnected_device_is_informational(self):
        devices = [make_rf_pad("P1"), make_rf_pad("P2"), make_capacitor("C_orphan")]
        net = MicrostripNet("m", Terminal("P1", "SIG"), Terminal("P2", "SIG"), 200.0)
        netlist = Netlist("orphan", devices, [net], LayoutArea(400.0, 300.0))
        codes = issue_codes(netlist)
        assert "unconnected-device" in codes
        assert "disconnected" in codes
        # informational only — assert_valid still passes
        assert_valid(netlist)

    def test_pin_contention_warning(self):
        devices = [make_rf_pad("P1"), make_rf_pad("P2"), make_rf_pad("P3")]
        nets = [
            MicrostripNet("m1", Terminal("P1", "SIG"), Terminal("P2", "SIG"), 200.0),
            MicrostripNet("m2", Terminal("P1", "SIG"), Terminal("P3", "SIG"), 200.0),
        ]
        netlist = Netlist("contention", devices, nets, LayoutArea(500.0, 400.0))
        assert "pin-contention" in issue_codes(netlist)
