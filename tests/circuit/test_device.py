"""Unit tests for devices, pins and rotations."""

import pytest

from repro.errors import NetlistError
from repro.circuit import (
    Device,
    DeviceType,
    Pin,
    Rotation,
    make_capacitor,
    make_dc_pad,
    make_inductor,
    make_resistor,
    make_rf_pad,
    make_transistor,
)
from repro.geometry import Point


class TestPin:
    def test_offset_rotation(self):
        pin = Pin("G", -10.0, 0.0)
        assert pin.offset(Rotation.R0) == Point(-10.0, 0.0)
        assert pin.offset(Rotation.R90) == Point(0.0, -10.0)
        assert pin.offset(Rotation.R180) == Point(10.0, 0.0)
        assert pin.offset(Rotation.R270) == Point(0.0, 10.0)

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Pin("", 0.0, 0.0)


class TestRotation:
    def test_from_degrees(self):
        assert Rotation.from_degrees(270) is Rotation.R270
        assert Rotation.from_degrees(360) is Rotation.R0

    def test_invalid_degrees(self):
        with pytest.raises(NetlistError):
            Rotation.from_degrees(45)


class TestDevice:
    def test_factory_transistor(self):
        device = make_transistor("M1")
        assert device.device_type is DeviceType.TRANSISTOR
        assert set(device.pin_names()) == {"D", "G", "S"}
        assert not device.is_pad

    def test_factory_pads_are_pads(self):
        assert make_rf_pad("P").is_pad
        assert make_dc_pad("B").is_pad
        assert not make_rf_pad("P").rotatable

    def test_negative_dimensions_rejected(self):
        with pytest.raises(NetlistError):
            Device("bad", DeviceType.GENERIC, -1.0, 5.0)

    def test_pin_outside_outline_rejected(self):
        with pytest.raises(NetlistError):
            Device(
                "bad",
                DeviceType.GENERIC,
                10.0,
                10.0,
                pins={"A": Pin("A", 20.0, 0.0)},
            )

    def test_pin_key_name_mismatch_rejected(self):
        with pytest.raises(NetlistError):
            Device(
                "bad",
                DeviceType.GENERIC,
                10.0,
                10.0,
                pins={"A": Pin("B", 0.0, 0.0)},
            )

    def test_unknown_pin_lookup(self):
        with pytest.raises(NetlistError):
            make_transistor("M1").pin("Z")

    def test_dimensions_swap_under_rotation(self):
        device = make_transistor("M1", width=40.0, height=30.0)
        assert device.dimensions(Rotation.R0) == (40.0, 30.0)
        assert device.dimensions(Rotation.R90) == (30.0, 40.0)

    def test_pin_position_under_rotation(self):
        device = make_transistor("M1", width=40.0, height=30.0)
        center = Point(100.0, 100.0)
        gate_r0 = device.pin_position("G", center, Rotation.R0)
        gate_r180 = device.pin_position("G", center, Rotation.R180)
        assert gate_r0 == Point(80.0, 100.0)
        assert gate_r180 == Point(120.0, 100.0)

    def test_outline(self):
        device = make_capacitor("C1", width=30.0, height=20.0)
        outline = device.outline(Point(50.0, 50.0))
        assert outline.as_tuple() == (35.0, 40.0, 65.0, 60.0)

    def test_equivalent_pins(self):
        capacitor = make_capacitor("C1")
        assert capacitor.equivalent_pins("P1") == ["P1", "P2"]
        transistor = make_transistor("M1")
        assert transistor.equivalent_pins("G") == ["G"]

    def test_area_and_half_perimeter(self):
        device = make_resistor("R1", width=20.0, height=10.0)
        assert device.area == pytest.approx(200.0)
        assert device.half_perimeter == pytest.approx(30.0)

    def test_serialisation_round_trip(self):
        for device in (
            make_transistor("M1"),
            make_capacitor("C1"),
            make_rf_pad("P1"),
            make_inductor("L1"),
            make_resistor("R1"),
        ):
            rebuilt = Device.from_dict(device.as_dict())
            assert rebuilt == device

    def test_malformed_record_rejected(self):
        with pytest.raises(NetlistError):
            Device.from_dict({"name": "x"})
