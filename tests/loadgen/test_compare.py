"""The snapshot diff engine: classification, tolerances, gate semantics."""

import json

import pytest

from repro.cli import main
from repro.loadgen import (
    Thresholds,
    compare_snapshots,
    diff_snapshot_files,
    write_snapshot,
)


def payload(
    settle_p95=0.5,
    failures=0,
    seed=2016,
    throughput=3.4,
    lost=0,
    attached=121,
    rejected=10,
):
    """A miniature load-report data tree with every metric class in it."""
    return {
        "ok": True,
        "spec": {"jobs": 240, "unique_jobs": 40, "seed": seed},
        "config": {"concurrency": 2, "class_limits": {"background": 4}},
        "dispositions": {"queued": 40, "attached": attached, "cached": 69},
        "rejected_429": rejected,
        "settle_latency_s": {
            "count": 240, "p50": settle_p95 / 2.0, "p95": settle_p95,
        },
        "throughput": {"settled_jobs_per_s": throughput},
        "lost_jobs": [f"job-{i}" for i in range(lost)],
        "submit_errors": [],
        "server_stats": {"failures": failures},
        "reconciliation": {
            "settled": {"client": 240 - rejected, "server": 240 - rejected,
                        "ok": True},
        },
    }


def two_files(tmp_path, base_data, cur_data):
    base = write_snapshot("gate", base_data, directory=tmp_path / "base")
    cur = write_snapshot("gate", cur_data, directory=tmp_path / "cur")
    return base, cur


class TestVerdicts:
    def test_same_plan_rerun_is_clean(self, tmp_path):
        # Same plan, timing jitter and a different disposition split:
        # exactly what two honest runs of one workload look like.
        base, cur = two_files(
            tmp_path,
            payload(settle_p95=0.50, attached=121, rejected=10),
            payload(settle_p95=0.61, attached=118, rejected=13),
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "ok"
        assert not report.plan_mismatch
        assert report.gate_verdict(gate=True) == "ok"

    def test_10x_latency_regression_fails(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=5.5)
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "regression"
        offenders = [
            e.path for e in report.entries if e.verdict == "regression"
        ]
        assert "settle_latency_s.p95" in offenders

    def test_moderate_latency_drift_only_warns(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=1.6)
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "warn"
        assert report.gate_verdict(gate=True) == "warn"

    def test_sub_floor_latency_jitter_ignored(self, tmp_path):
        # 4x drift, but both sides under the 5ms noise floor: scheduler
        # jitter, not signal.
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.001), payload(settle_p95=0.004)
        )
        assert diff_snapshot_files(base, cur).verdict == "ok"

    def test_latency_improvement_is_ok_and_noted(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(settle_p95=5.0), payload(settle_p95=0.5)
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "ok"
        improved = [e for e in report.entries if e.note == "improved"]
        assert any(e.path == "settle_latency_s.p95" for e in improved)

    def test_throughput_collapse_fails(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(throughput=3.4), payload(throughput=0.3)
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "regression"

    def test_counter_drift_is_always_a_regression(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(failures=0), payload(failures=1)
        )
        report = diff_snapshot_files(base, cur)
        bad = {e.path: e for e in report.entries if e.verdict == "regression"}
        assert "server_stats.failures" in bad
        assert bad["server_stats.failures"].metric_class == "counter"

    def test_lost_jobs_gated_via_list_length(self, tmp_path):
        base, cur = two_files(tmp_path, payload(lost=0), payload(lost=2))
        report = diff_snapshot_files(base, cur)
        bad = [e.path for e in report.entries if e.verdict == "regression"]
        assert "lost_jobs.len" in bad

    def test_reconciliation_flag_flip_fails(self, tmp_path):
        cur_data = payload()
        cur_data["reconciliation"]["settled"]["ok"] = False
        base, cur = two_files(tmp_path, payload(), cur_data)
        report = diff_snapshot_files(base, cur)
        bad = [e.path for e in report.entries if e.verdict == "regression"]
        assert "reconciliation.settled.ok" in bad

    def test_reconciliation_tallies_are_not_gated(self, tmp_path):
        # The client/server tallies inside reconciliation are disposition
        # counts — timing-dependent, so drift must stay informational.
        cur_data = payload(rejected=13)
        base, cur = two_files(tmp_path, payload(rejected=10), cur_data)
        report = diff_snapshot_files(base, cur)
        entry = {e.path: e for e in report.entries}[
            "reconciliation.settled.client"
        ]
        assert entry.metric_class == "info"
        assert entry.verdict == "ok"

    def test_latency_tail_samples_are_not_gated(self, tmp_path):
        # max (and p99 at CI sample sizes) is a single worst observation;
        # one GC pause legitimately moves it >10x between correct runs.
        # The gate rides mean/p50/p95 instead.
        from repro.loadgen.compare import classify

        assert classify("sse.live_lag_s.max") == "info"
        assert classify("sse.live_lag_s.p99") == "info"
        assert classify("settle_latency_s.max") == "info"
        assert classify("settle_latency_s.p95") == "latency"
        assert classify("settle_latency_s.mean") == "latency"
        base_data = payload()
        base_data["settle_latency_s"]["max"] = 0.05
        cur_data = payload()
        cur_data["settle_latency_s"]["max"] = 0.66  # 13x — still ok
        base, cur = two_files(tmp_path, base_data, cur_data)
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "ok"
        assert report.gate_verdict(gate=True) == "ok"


class TestPlanAndProvenance:
    def test_plan_mismatch_warns_and_fails_under_gate(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(seed=2016), payload(seed=2017)
        )
        report = diff_snapshot_files(base, cur)
        assert report.verdict == "warn"
        assert report.plan_mismatch
        assert report.gate_verdict(gate=False) == "warn"
        assert report.gate_verdict(gate=True) == "regression"

    def test_cross_host_comparison_warns(self):
        def envelope(host):
            return {
                "schema": "rfic-bench", "schema_version": 1, "name": "x",
                "host": host, "platform": "Linux-x", "data": payload(),
            }

        report = compare_snapshots(envelope("ci-a"), envelope("ci-b"))
        assert any("host differs" in w for w in report.provenance_warnings)
        assert report.verdict == "ok"  # a warning, not a verdict

    def test_pre_provenance_baseline_reads_as_unrecorded(self):
        old = {
            "schema": "rfic-bench", "schema_version": 1, "name": "x",
            "data": payload(),
        }
        new = dict(old, host="ci-a", platform="Linux-x")
        report = compare_snapshots(old, new)
        assert any("unrecorded" in w for w in report.provenance_warnings)

    def test_new_info_metric_missing_in_baseline_is_ok(self, tmp_path):
        cur_data = payload()
        cur_data["brand_new_section"] = {"events": 7}
        base, cur = two_files(tmp_path, payload(), cur_data)
        report = diff_snapshot_files(base, cur)
        entry = {e.path: e for e in report.entries}[
            "brand_new_section.events"
        ]
        assert entry.verdict == "ok"
        assert "missing in baseline" in entry.note

    def test_counter_missing_in_current_warns(self, tmp_path):
        # A reconciliation check that vanished from the candidate run is
        # suspicious (a silently-dropped invariant), so it warns.
        base_data = payload()
        base_data["reconciliation"]["attached"] = {"ok": True}
        base, cur = two_files(tmp_path, base_data, payload())
        report = diff_snapshot_files(base, cur)
        entry = {e.path: e for e in report.entries}[
            "reconciliation.attached.ok"
        ]
        assert entry.verdict == "warn"
        assert "missing in current" in entry.note


class TestThresholds:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(latency_warn_ratio=5.0, latency_fail_ratio=2.0)
        with pytest.raises(ValueError):
            Thresholds(throughput_warn_ratio=0.5)

    def test_custom_fail_ratio_applies(self, tmp_path):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=1.6)
        )
        strict = Thresholds(latency_warn_ratio=1.5, latency_fail_ratio=3.0)
        assert diff_snapshot_files(base, cur, strict).verdict == "regression"


class TestCLI:
    def test_exit_zero_on_same_plan_rerun(self, tmp_path, capsys):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=0.6)
        )
        assert main(["bench", "diff", str(base), str(cur), "--gate"]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_exit_nonzero_on_injected_10x_regression(self, tmp_path, capsys):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=5.5)
        )
        assert main(["bench", "diff", str(base), str(cur)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_gate_fails_plan_mismatch_but_plain_diff_passes(
        self, tmp_path, capsys
    ):
        base, cur = two_files(
            tmp_path, payload(seed=2016), payload(seed=2017)
        )
        assert main(["bench", "diff", str(base), str(cur)]) == 0
        assert main(["bench", "diff", str(base), str(cur), "--gate"]) == 1
        assert "plan mismatch" in capsys.readouterr().out

    def test_json_and_report_outputs(self, tmp_path, capsys):
        base, cur = two_files(
            tmp_path, payload(settle_p95=0.5), payload(settle_p95=5.5)
        )
        report_path = tmp_path / "diff.json"
        code = main([
            "bench", "diff", str(base), str(cur),
            "--json", "--report", str(report_path),
        ])
        assert code == 1
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(report_path.read_text(encoding="utf-8"))
        assert printed == on_disk
        assert printed["verdict"] == "regression"
        assert printed["gate_verdict"] == "regression"
        assert printed["counts"]["regression"] >= 1
        paths = {entry["path"] for entry in printed["entries"]}
        assert "settle_latency_s.p95" in paths

    def test_missing_baseline_is_an_error(self, tmp_path):
        cur = write_snapshot("gate", payload(), directory=tmp_path)
        with pytest.raises(SystemExit, match="no benchmark snapshot"):
            main(["bench", "diff", str(tmp_path / "BENCH_absent.json"), str(cur)])

    def test_corrupt_baseline_is_actionable(self, tmp_path):
        base, cur = two_files(tmp_path, payload(), payload())
        base.write_text("{torn", encoding="utf-8")
        with pytest.raises(SystemExit, match="torn or truncated"):
            main(["bench", "diff", str(base), str(cur)])


class TestCommittedBaseline:
    def test_committed_service_load_baseline_self_diff_gates_clean(self):
        # The exact invocation CI's bench-gate step runs, degenerate
        # case: the committed baseline must always gate clean against
        # itself, or the gate is wrong before any code changes.
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[2] / "BENCH_service_load.json"
        report = diff_snapshot_files(baseline, baseline)
        assert report.gate_verdict(gate=True) == "ok"
        assert len(report.entries) > 50
