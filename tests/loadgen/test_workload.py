"""Workload plans must be deterministic functions of their spec."""

import pytest

from repro.errors import ConfigurationError
from repro.loadgen import WorkloadSpec
from repro.service.documents import PRIORITY_CLASSES


class TestDeterminism:
    def test_same_seed_same_plan(self):
        spec = WorkloadSpec(jobs=30, unique_jobs=8, seed=11)
        first = spec.build()
        second = WorkloadSpec(jobs=30, unique_jobs=8, seed=11).build()
        assert first == second

    def test_different_seed_different_plan(self):
        base = WorkloadSpec(jobs=30, unique_jobs=8, seed=1).build()
        other = WorkloadSpec(jobs=30, unique_jobs=8, seed=2).build()
        # The hashes differ (the seed salts every tag), and so does the
        # submission order / priority assignment.
        assert {p.key for p in base} != {p.key for p in other}

    def test_plan_is_stable_across_processes(self):
        # The content hash is canonical, so the first planned key for a
        # fixed spec is a constant; drift here means hashing or netlist
        # construction became nondeterministic.
        plan_a = WorkloadSpec(jobs=5, unique_jobs=2, seed=0).build()
        plan_b = WorkloadSpec(jobs=5, unique_jobs=2, seed=0).build()
        assert [p.key for p in plan_a] == [p.key for p in plan_b]
        assert [p.priority for p in plan_a] == [p.priority for p in plan_b]
        assert [p.client for p in plan_a] == [p.client for p in plan_b]


class TestShape:
    def test_counts_and_uniques(self):
        spec = WorkloadSpec(jobs=50, unique_jobs=12, seed=3)
        plan = spec.build()
        assert len(plan) == 50
        assert len({p.key for p in plan}) == 12
        assert [p.index for p in plan] == list(range(50))

    def test_kinds_match_first_occurrence(self):
        plan = WorkloadSpec(jobs=40, unique_jobs=10, seed=7).build()
        seen = set()
        for item in plan:
            expected = "revisit" if item.key in seen else "first"
            assert item.kind == expected
            seen.add(item.key)
        assert sum(1 for p in plan if p.kind == "first") == 10

    def test_priorities_and_clients_valid(self):
        spec = WorkloadSpec(jobs=60, unique_jobs=6, clients=3, seed=5)
        plan = spec.build()
        assert {p.priority for p in plan} <= set(PRIORITY_CLASSES)
        assert {p.client for p in plan} <= {f"load-client-{i}" for i in range(3)}

    def test_all_unique_jobs_no_revisits(self):
        plan = WorkloadSpec(jobs=8, unique_jobs=8, seed=1).build()
        assert all(p.kind == "first" for p in plan)

    def test_documents_are_submittable(self):
        from repro.service.documents import job_from_document

        plan = WorkloadSpec(jobs=3, unique_jobs=3, seed=9).build()
        for item in plan:
            job = job_from_document(item.document)
            assert job.content_hash == item.key
            assert job.flow == "manual"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"jobs": 10, "unique_jobs": 0},
            {"jobs": 10, "unique_jobs": 11},
            {"submitters": 0},
            {"clients": 0},
            {"watchers": -1},
            {"cached_wave": -1},
            {"interactive_fraction": 0.7, "background_fraction": 0.6},
            {"interactive_fraction": -0.1},
        ],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_spec_round_trips_to_dict(self):
        spec = WorkloadSpec(jobs=20, unique_jobs=5, seed=42, cached_wave=7)
        data = spec.as_dict()
        assert data["jobs"] == 20
        assert data["cached_wave"] == 7
        assert WorkloadSpec(**data) == spec
