"""Percentile math and latency summaries on known inputs."""

import time

import pytest

from repro.loadgen import DepthSampler, percentile, summarize


class TestPercentile:
    def test_known_values_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 95) == pytest.approx(95.05)
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_interpolates_between_ranks(self):
        # Ranks 0..3 → p50 falls exactly between the middle two.
        assert percentile([10.0, 20.0, 30.0, 40.0], 50) == pytest.approx(25.0)
        assert percentile([10.0, 20.0, 30.0, 40.0], 25) == pytest.approx(17.5)

    def test_order_independent(self):
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 99) == 7.5

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @pytest.mark.parametrize("q", [-1, 100.1])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)


class TestSummarize:
    def test_full_summary(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(2.5)

    def test_empty_sample_is_schema_stable(self):
        summary = summarize([])
        assert summary["count"] == 0
        # Every statistical key is present (None), so snapshot diffs
        # never gain/lose keys when a path saw no traffic.
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert all(summary[k] is None for k in summary if k != "count")


class TestDepthSampler:
    def test_samples_accumulate_and_stop(self):
        calls = []

        def probe():
            calls.append(1)
            return {"queued": len(calls), "running": 0}

        sampler = DepthSampler(probe, interval=0.02).start()
        time.sleep(0.15)
        samples = sampler.stop()
        # One sample at start, one at stop, plus the periodic ones.
        assert len(samples) >= 4
        offsets = [t for t, _ in samples]
        assert offsets == sorted(offsets)
        assert sampler.peak("queued") == len(calls)

    def test_probe_exceptions_do_not_kill_the_run(self):
        def bad_probe():
            raise RuntimeError("boom")

        sampler = DepthSampler(bad_probe, interval=0.01).start()
        time.sleep(0.05)
        assert sampler.stop() == []
        assert sampler.peak("queued") == 0
