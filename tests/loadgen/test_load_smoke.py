"""The CI load-smoke tier: a real daemon under a fixed synthetic load.

``pytest -m load_smoke`` runs exactly this module.  It boots a real
HTTP daemon on an ephemeral port, fires 200+ mixed-disposition jobs at
it from 8 concurrent submitters while 24 SSE watchers stream events,
and then holds the run to the strictest standard the service tier
offers: every client-observed disposition must reconcile *exactly*
against the server's ``/stats`` counters, with zero lost jobs.  The
full measurement report is persisted as a schema-versioned
``BENCH_service_load.json`` (honouring ``RFIC_BENCH_DIR``; defaults to
the test's tmp dir so plain test runs do not dirty the checkout).
"""

import os

import pytest

from repro.loadgen import (
    LoadTestConfig,
    WorkloadSpec,
    load_snapshot,
    run_load_test,
    write_snapshot,
)

pytestmark = pytest.mark.load_smoke

#: The fixed CI workload: ≥200 jobs, ≥8 submitters, ≥20 watchers.
SMOKE_SPEC = WorkloadSpec(
    jobs=200,
    unique_jobs=40,
    submitters=8,
    watchers=24,
    cached_wave=40,
    seed=2016,
)

SMOKE_CONFIG = LoadTestConfig(
    concurrency=2,
    class_limits={"background": 4},  # the background flood sheds
    settle_timeout=100.0,  # the whole run must fit the CI budget
)


def test_load_smoke(tmp_path):
    report = run_load_test(SMOKE_SPEC, data_dir=tmp_path / "svc", config=SMOKE_CONFIG)
    bench_dir = os.environ.get("RFIC_BENCH_DIR") or tmp_path
    path = write_snapshot("service_load", report.to_snapshot_data(), directory=bench_dir)

    # -- the snapshot exists and round-trips through the versioned schema
    envelope = load_snapshot(path)
    assert envelope["name"] == "service_load"
    assert envelope["schema_version"] == 1
    data = envelope["data"]

    # -- the workload really was mixed and at full scale
    assert report.submitted == SMOKE_SPEC.jobs + SMOKE_SPEC.cached_wave
    dispositions = report.dispositions
    assert dispositions.get("queued", 0) >= SMOKE_SPEC.unique_jobs
    assert dispositions.get("attached", 0) > 0
    assert dispositions.get("cached", 0) >= SMOKE_SPEC.cached_wave

    # -- every counter reconciles exactly; nothing was lost or errored
    assert report.ok, {
        name: check for name, check in report.reconcile().items() if not check["ok"]
    }
    checks = report.reconcile()

    # -- the /metrics exposition reconciles with the run
    assert report.metrics_midrun_error is None  # parse-clean mid-run scrape
    assert report.metrics_text, "final /metrics scrape missing"
    # Every settlement landed exactly one histogram observation …
    assert checks["metrics_latency_count"]["ok"], checks["metrics_latency_count"]
    # … and queue_wait + solve + overhead sums back to end-to-end latency.
    assert checks["metrics_stage_attribution"]["ok"], checks[
        "metrics_stage_attribution"
    ]
    # Client-observed percentiles sit inside the server histogram buckets.
    for name in ("metrics_settle_p50_bounds", "metrics_settle_p95_bounds"):
        assert name in checks, "percentile reconciliation never ran"
        assert checks[name]["ok"], checks[name]

    # -- one solved job's span tree covers its end-to-end latency
    trace = report.trace_sample
    assert trace, "no solved job produced a span tree"
    assert trace["total_s"] is not None
    assert abs(trace["span_sum_s"] - trace["total_s"]) <= max(
        0.5, 0.1 * trace["total_s"]
    ), trace
    span_names = {span["name"] for span in trace["spans"]}
    assert {"admission", "queue_wait", "worker", "settle"} <= span_names
    assert report.lost_jobs == []
    assert report.submit_errors == []
    stats = report.server_stats
    assert stats["solved"] + stats["served_from_cache"] + stats["failures"] == (
        dispositions.get("queued", 0)
        + dispositions.get("requeued", 0)
        + dispositions.get("cached", 0)
    )
    assert stats["attached"] == dispositions.get("attached", 0)

    # -- the SSE watcher pool was really streaming
    assert report.watchers_started >= 20
    assert report.watchers_stalled == 0
    assert report.sse_events > 0

    # -- measurements landed in the snapshot
    assert data["admission_latency_s"]["count"] == report.submitted
    assert data["settle_latency_s"]["count"] >= SMOKE_SPEC.unique_jobs - data[
        "rejected_429"
    ]
    assert data["queue_depth"]["peak"] > 0
    assert data["wall_s"] < 120.0


def test_load_smoke_backpressure_reconciles(tmp_path):
    """A background flood against a tiny class cap: 429s, still exact."""
    spec = WorkloadSpec(
        jobs=30,
        unique_jobs=30,
        submitters=8,
        watchers=0,
        interactive_fraction=0.0,
        background_fraction=1.0,
        seed=99,
    )
    config = LoadTestConfig(concurrency=1, class_limits={"background": 2})
    report = run_load_test(spec, data_dir=tmp_path / "svc", config=config)
    assert report.rejected_429 > 0, "the flood never tripped the class cap"
    admission = report.server_stats["admission"]
    assert admission["rejected"] + admission["shed"] == report.rejected_429
    assert report.ok, report.reconcile()
    assert report.lost_jobs == []
