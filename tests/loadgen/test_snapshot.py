"""The BENCH_*.json envelope: round-trips, validation, and overrides."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.loadgen import (
    BENCH_DIR_ENV,
    CorruptSnapshotError,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        data = {"timings_s": {"test_a": 1.25}, "nested": {"x": [1, 2, 3]}}
        path = write_snapshot("demo", data, directory=tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        envelope = load_snapshot(path)
        assert envelope["schema"] == SNAPSHOT_SCHEMA
        assert envelope["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert envelope["name"] == "demo"
        assert envelope["data"] == data
        assert envelope["created_unix"] > 0

    def test_load_by_name(self, tmp_path):
        write_snapshot("by_name", {"k": 1}, directory=tmp_path)
        envelope = load_snapshot("by_name", directory=tmp_path)
        assert envelope["data"] == {"k": 1}

    def test_overwrite_is_atomic_no_staging_left(self, tmp_path):
        write_snapshot("twice", {"run": 1}, directory=tmp_path)
        write_snapshot("twice", {"run": 2}, directory=tmp_path)
        assert load_snapshot("twice", directory=tmp_path)["data"] == {"run": 2}
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_env_override_directs_writes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path / "redirected"))
        path = write_snapshot("via_env", {"k": 2})
        assert path.parent == tmp_path / "redirected"
        assert load_snapshot("via_env")["data"] == {"k": 2}


class TestProvenance:
    def test_envelope_carries_host_and_version(self, tmp_path):
        import socket

        from repro import __version__

        envelope = load_snapshot(
            write_snapshot("prov", {"k": 1}, directory=tmp_path)
        )
        assert envelope["host"] == socket.gethostname()
        assert envelope["repro_version"] == __version__
        # Provenance rides inside schema_version 1: old readers ignore
        # the extra keys, old files simply lack them.
        assert envelope["schema_version"] == SNAPSHOT_SCHEMA_VERSION == 1

    def test_pre_provenance_snapshot_still_loads(self, tmp_path):
        path = write_snapshot("old", {"k": 1}, directory=tmp_path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        del envelope["host"]
        del envelope["repro_version"]
        path.write_text(json.dumps(envelope), encoding="utf-8")
        loaded = load_snapshot(path)
        assert loaded.get("host") is None
        assert loaded.get("repro_version") is None
        assert loaded["data"] == {"k": 1}


class TestValidation:
    @pytest.mark.parametrize("name", ["", "a/b", "..\\evil"])
    def test_bad_names_rejected(self, name, tmp_path):
        with pytest.raises(ConfigurationError):
            snapshot_path(name, tmp_path)

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no benchmark snapshot"):
            load_snapshot("absent", directory=tmp_path)

    def test_corrupt_json(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="corrupt"):
            load_snapshot(bad)

    def test_torn_file_raises_distinct_actionable_error(self, tmp_path):
        # A truncated write is the classic torn-snapshot shape: valid
        # prefix, missing tail.
        path = write_snapshot("torn", {"k": list(range(100))}, directory=tmp_path)
        blob = path.read_text(encoding="utf-8")
        path.write_text(blob[: len(blob) // 2], encoding="utf-8")
        with pytest.raises(CorruptSnapshotError) as excinfo:
            load_snapshot(path)
        message = str(excinfo.value)
        assert "torn or truncated" in message
        assert "regenerate" in message
        # Distinct type, but still a ConfigurationError for old handlers.
        assert isinstance(excinfo.value, ConfigurationError)

    def test_binary_garbage_is_corrupt_not_a_crash(self, tmp_path):
        bad = tmp_path / "BENCH_garbage.json"
        bad.write_bytes(b"\xff\xfe\x00garbage\x80")
        with pytest.raises(CorruptSnapshotError, match="corrupt"):
            load_snapshot(bad)

    def test_foreign_document_rejected(self, tmp_path):
        alien = tmp_path / "BENCH_alien.json"
        alien.write_text(json.dumps({"schema": "other", "data": {}}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not an"):
            load_snapshot(alien)

    def test_newer_schema_version_rejected(self, tmp_path):
        path = write_snapshot("future", {"k": 1}, directory=tmp_path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="schema_version"):
            load_snapshot(path)
