"""Tests of the manual-like baseline: SA placer + serpentine router."""

import pytest

from repro.baselines import (
    AnnealingConfig,
    AnnealingPlacer,
    GreedyRouter,
    GreedyRouterConfig,
    ManualLikeFlow,
)
from repro.layout import ViolationKind, run_drc
from tests.conftest import build_small_netlist, build_tiny_netlist


@pytest.fixture(scope="module")
def placed_small():
    netlist = build_small_netlist()
    placer = AnnealingPlacer(AnnealingConfig(iterations=1500, seed=11))
    return netlist, placer.place_layout(netlist)


class TestAnnealingPlacer:
    def test_places_every_device(self, placed_small):
        netlist, layout = placed_small
        assert len(layout.placements) == netlist.num_devices

    def test_outlines_inside_area(self, placed_small):
        netlist, layout = placed_small
        boundary = netlist.area.rect
        for device in netlist.devices:
            assert boundary.contains_rect(layout.device_outline(device.name))

    def test_pads_stay_on_boundary(self, placed_small):
        netlist, layout = placed_small
        report = run_drc(layout)
        assert report.count(ViolationKind.PAD_NOT_ON_BOUNDARY) == 0

    def test_deterministic_given_seed(self):
        netlist = build_tiny_netlist()
        config = AnnealingConfig(iterations=400, seed=3)
        first, _ = AnnealingPlacer(config).place(netlist)
        second, _ = AnnealingPlacer(config).place(netlist)
        assert {name: p.center for name, p in first.items()} == {
            name: p.center for name, p in second.items()
        }

    def test_annealing_improves_over_initial_cost(self):
        netlist = build_small_netlist()
        placer = AnnealingPlacer(AnnealingConfig(iterations=1500, seed=5))
        initial = placer._initial_placements(netlist)
        initial_cost = placer._cost(netlist, initial)
        final, _ = placer.place(netlist)
        final_cost = placer._cost(netlist, final)
        assert final_cost <= initial_cost


class TestGreedyRouter:
    def test_routes_every_net(self, placed_small):
        netlist, layout = placed_small
        routed = GreedyRouter().route_layout(layout)
        assert routed.is_complete

    def test_equivalent_lengths_within_tolerance(self, placed_small):
        netlist, layout = placed_small
        config = GreedyRouterConfig(length_tolerance=2.0)
        routed = GreedyRouter(config).route_layout(layout)
        delta = netlist.technology.bend_compensation
        for net in netlist.microstrips:
            route = routed.route(net.name)
            direct = route.path.start.manhattan_distance(route.path.end)
            if direct <= net.target_length:
                error = abs(route.equivalent_length(delta) - net.target_length)
                assert error <= config.length_tolerance + 1e-6

    def test_routes_land_on_pins(self, placed_small):
        netlist, layout = placed_small
        routed = GreedyRouter().route_layout(layout)
        report = run_drc(routed)
        assert report.count(ViolationKind.OPEN_CONNECTION) == 0

    def test_detours_cost_bends(self, placed_small):
        netlist, layout = placed_small
        routed = GreedyRouter().route_layout(layout)
        total_bends = sum(route.bend_count for route in routed.routes)
        assert total_bends > 0

    def test_lobe_budget_respected(self, placed_small):
        netlist, layout = placed_small
        config = GreedyRouterConfig(max_lobes=1)
        routed = GreedyRouter(config).route_layout(layout)
        for route in routed.routes:
            # One lobe plus the connecting L: at most ~6 corners.
            assert route.bend_count <= 6


class TestManualLikeFlow:
    def test_flow_produces_complete_layout(self, manual_small_result):
        assert manual_small_result.layout.is_complete
        assert manual_small_result.runtime > 0

    def test_summary_flow_name(self, manual_small_result):
        assert manual_small_result.summary()["flow"] == "manual-like"

    def test_metrics_populated(self, manual_small_result):
        assert manual_small_result.metrics.total_bend_count >= 0
        assert manual_small_result.metrics.total_wirelength > 0
