"""Wire-format round trips: job/config/sweep documents and hash stability."""

import json

import pytest

from repro.core.config import PhaseSettings, PILPConfig
from repro.errors import ConfigurationError
from repro.runner import GeneratorSpec, LayoutJob
from repro.service import (
    config_from_dict,
    config_to_dict,
    expand_submission,
    job_from_document,
    job_to_document,
    sweep_from_document,
)
from repro.service.documents import priority_rank, validate_priority
from tests.conftest import build_tiny_netlist


class TestConfigRoundTrip:
    def test_default_config(self):
        assert config_from_dict(config_to_dict(PILPConfig())) == PILPConfig()

    def test_fast_config(self):
        assert config_from_dict(config_to_dict(PILPConfig.fast())) == PILPConfig.fast()

    def test_missing_document_means_default(self):
        assert config_from_dict(None) == PILPConfig()
        assert config_from_dict({}) == PILPConfig()

    def test_customised_config_survives_json(self):
        config = PILPConfig.fast().with_updates(
            random_seed=7, phase1=PhaseSettings(time_limit=3.0, warm_start=False)
        )
        document = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(document) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"frobnicate": 1})


class TestJobRoundTrip:
    def test_netlist_job_hash_is_stable(self):
        job = LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag="x")
        document = json.loads(json.dumps(job_to_document(job)))
        rebuilt = job_from_document(document)
        assert rebuilt.content_hash == job.content_hash
        assert rebuilt.flow == "manual"
        assert rebuilt.tag == "x"

    def test_generator_job_hash_matches_materialised_job(self):
        lazy = LayoutJob(generator=GeneratorSpec("buffer60", seed=3), config=PILPConfig.fast())
        rebuilt = job_from_document(json.loads(json.dumps(job_to_document(lazy))))
        assert rebuilt.content_hash == lazy.content_hash
        assert rebuilt.generator is not None  # stayed lazy on the wire

    def test_document_needs_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            job_from_document({"flow": "manual"})
        with pytest.raises(ConfigurationError):
            job_from_document(
                {
                    "flow": "manual",
                    "netlist": {"name": "x"},
                    "generator": {"circuit": "buffer60"},
                }
            )

    def test_unknown_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            job_from_document({"flow": "magic", "generator": {"circuit": "buffer60"}})


class TestSweepDocuments:
    def test_sweep_expands_to_grid_points(self):
        submission = {
            "flow": "manual",
            "sweep": {"stage_counts": [1], "seeds": [1, 2, 3]},
        }
        documents = expand_submission(submission)
        assert len(documents) == 3
        keys = {job_from_document(d).content_hash for d in documents}
        assert len(keys) == 3  # distinct seeds => distinct jobs

    def test_plain_document_passes_through(self):
        document = {"flow": "manual", "generator": {"circuit": "buffer60"}}
        assert expand_submission(document) == [document]

    def test_unknown_sweep_field_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_from_document({"colour": "blue"})


class TestPriorities:
    def test_validation_and_ranking(self):
        assert validate_priority(None) == "batch"
        assert priority_rank("interactive") < priority_rank("batch") < priority_rank(
            "background"
        )
        with pytest.raises(ConfigurationError):
            validate_priority("urgent")
