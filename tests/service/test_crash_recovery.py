"""Crash recovery: SIGKILL the daemon mid-queue, restart, lose nothing.

The daemon runs as a real subprocess (``python -m repro.cli serve``) so the
kill is the genuine article — no atexit handlers, no gentle shutdown.  The
journal must replay every submitted-but-unsettled job on restart, and
hashes that settled before the kill must be served from the result cache
instead of being re-solved.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner import GeneratorSpec, LayoutJob
from repro.service import ServiceClient, job_to_document

pytestmark = pytest.mark.slow  # boots subprocess daemons; a few seconds each

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def spawn_daemon(tmp_path, name):
    """Start ``rfic-layout serve`` on an ephemeral port; return (proc, client)."""
    port_file = tmp_path / f"{name}.port"
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--port-file", str(port_file),
            "--data-dir", str(tmp_path / "data"),
            "--inline", "--dispatchers", "1", "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=str(tmp_path),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            break
        if process.poll() is not None:
            raise RuntimeError(f"daemon died on startup (exit {process.returncode})")
        time.sleep(0.05)
    else:
        process.kill()
        raise RuntimeError("daemon never published its port")
    port = int(port_file.read_text().strip())
    port_file.unlink()  # each epoch publishes its own port
    return process, ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)


def buffer60_document(tag):
    return job_to_document(
        LayoutJob(flow="manual", generator=GeneratorSpec("buffer60"), tag=tag)
    )


NUM_JOBS = 5


class TestCrashRecovery:
    def test_sigkill_loses_no_jobs_and_settled_hashes_come_from_cache(self, tmp_path):
        process, client = spawn_daemon(tmp_path, "first")
        keys = []
        try:
            for index in range(NUM_JOBS):
                response = client.submit_document(buffer60_document(f"job-{index}"))
                keys.append(response["key"])
            assert len(set(keys)) == NUM_JOBS
            # Let the single dispatcher get into (at most) the first solves,
            # then kill it dead mid-queue.
            time.sleep(0.7)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)

        # ------------------------------------------------------------------
        # Restart on the same data dir: the journal replays the backlog.
        # ------------------------------------------------------------------
        process, client = spawn_daemon(tmp_path, "second")
        try:
            stats = client.stats()
            # Every submitted job is known to the reborn daemon...
            for key in keys:
                assert client.status(key)["state"] in (
                    "queued", "running", "done",
                ), f"job {key[:12]} lost across the crash"
            # ...and the ones that had not settled were requeued for dispatch.
            assert stats["replayed_from_journal"] >= 1

            # Everything drains to done, without resubmission.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if all(client.status(key)["state"] == "done" for key in keys):
                    break
                time.sleep(0.2)
            states = {key: client.status(key)["state"] for key in keys}
            assert set(states.values()) == {"done"}, states

            # Exactly-once settlement: resubmitting every settled hash is
            # served from the cache — the solve counter must not move.
            solved_before = client.stats()["solved"]
            hits_before = client.stats()["cache"]["hits"]
            for index, key in enumerate(keys):
                response = client.submit_document(buffer60_document(f"job-{index}"))
                assert response["key"] == key
                assert response["disposition"] in ("cached", "done")
                assert response["state"] == "done"
            stats = client.stats()
            assert stats["solved"] == solved_before, "a settled hash was re-solved"
            assert stats["cache"]["hits"] >= hits_before + NUM_JOBS
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_restart_preserves_settled_results_without_rerunning(self, tmp_path):
        # Epoch 1: solve one job cleanly, shut down gently.
        process, client = spawn_daemon(tmp_path, "one")
        try:
            response = client.submit_document(buffer60_document("stable"))
            key = response["key"]
            record = client.wait(key, timeout=120)
            assert record["state"] == "done"
        finally:
            process.terminate()
            process.wait(timeout=10)

        # Epoch 2: the settled record survives, layout is served, and a
        # resubmission never reaches the pool.
        process, client = spawn_daemon(tmp_path, "two")
        try:
            record = client.status(key)
            assert record["state"] == "done"
            assert client.layout_document(key)["circuit"].startswith("buffer60")
            response = client.submit_document(buffer60_document("stable"))
            assert response["disposition"] in ("cached", "done")
            assert client.stats()["solved"] == 0
        finally:
            process.terminate()
            process.wait(timeout=10)
