"""Durable queue: journal persistence, replay, exactly-once, rotation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner import LayoutJob
from repro.service import JobQueue, job_to_document
from repro.service.queue import JOURNAL_FILE
from tests.conftest import build_tiny_netlist


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "service"


class TestSubmission:
    def test_submit_journals_and_queues(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, disposition = queue.submit(tiny_document(), client="alice")
        assert disposition == "queued"
        assert record.state == "queued"
        assert (data_dir / JOURNAL_FILE).is_file()
        assert queue.depth() == 1
        assert queue.get(record.key) is record

    def test_duplicate_submission_attaches(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        first, _ = queue.submit(tiny_document())
        second, disposition = queue.submit(tiny_document())
        assert disposition == "attached"
        assert second is first
        assert first.attach_count == 1
        assert queue.depth() == 1  # still one unit of work

    def test_distinct_tags_are_distinct_jobs(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        queue.submit(tiny_document("a"))
        queue.submit(tiny_document("b"))
        assert queue.depth() == 2

    def test_bad_priority_rejected(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        with pytest.raises(ConfigurationError):
            queue.submit(tiny_document(), priority="asap")


class TestSettlement:
    def test_settle_is_exactly_once(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        assert queue.settle(record.key, "done", summary={"x": 1}) is True
        assert queue.settle(record.key, "failed", error="nope") is False
        assert record.state == "done"
        assert record.summary == {"x": 1}

    def test_settle_requires_terminal_state(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        with pytest.raises(ConfigurationError):
            queue.settle(record.key, "running")

    def test_resubmission_of_failed_job_requeues(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        queue.settle(record.key, "failed", error="boom")
        requeued, disposition = queue.submit(tiny_document())
        assert disposition == "requeued"
        assert requeued.state == "queued"
        assert requeued.error is None

    def test_resubmission_of_done_job_is_noop(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        queue.settle(record.key, "done")
        again, disposition = queue.submit(tiny_document())
        assert disposition == "done"
        assert again.state == "done"


class TestReplay:
    """A new JobQueue on the same directory is the crash-restart path."""

    def test_pending_jobs_survive_restart(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document(), client="alice", priority="interactive")
        del queue  # "crash"

        revived = JobQueue(data_dir, fsync=False)
        replayed = revived.get(record.key)
        assert replayed is not None
        assert replayed.state == "queued"
        assert replayed.client == "alice"
        assert replayed.priority == "interactive"
        assert replayed.document == record.document

    def test_running_jobs_requeue_on_restart(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        queue.mark_running(record.key)
        revived = JobQueue(data_dir, fsync=False)
        assert revived.get(record.key).state == "queued"
        assert revived.get(record.key).started_unix is None

    def test_settled_jobs_stay_settled_after_restart(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        queue.mark_running(record.key)
        queue.settle(record.key, "done", summary={"drc_clean": True}, runtime=1.5)
        revived = JobQueue(data_dir, fsync=False)
        replayed = revived.get(record.key)
        assert replayed.state == "done"
        assert replayed.summary == {"drc_clean": True}
        assert replayed.runtime == 1.5
        assert revived.depth() == 0

    def test_torn_trailing_line_is_dropped(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document())
        with (data_dir / JOURNAL_FILE).open("a", encoding="utf-8") as handle:
            handle.write('{"op": "settle", "key": "' + record.key[:7])  # torn write
        revived = JobQueue(data_dir, fsync=False)
        assert revived.get(record.key).state == "queued"
        assert revived.dropped_lines == 1

    def test_resubmission_priority_survives_restart(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document(), priority="batch", client="old")
        queue.settle(record.key, "failed", error="boom")
        queue.submit(tiny_document(), priority="interactive", client="new")
        revived = JobQueue(data_dir, fsync=False)
        replayed = revived.get(record.key)
        assert replayed.state == "queued"
        assert replayed.priority == "interactive"  # the retry's admission terms
        assert replayed.client == "new"

    def test_seq_continues_after_restart(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        first, _ = queue.submit(tiny_document("a"))
        revived = JobQueue(data_dir, fsync=False)
        second, _ = revived.submit(tiny_document("b"))
        assert second.seq > first.seq


class TestRotation:
    def test_journal_compacts_atomically(self, data_dir):
        queue = JobQueue(data_dir, fsync=False, max_journal_bytes=512)
        keys = []
        for tag in ("a", "b", "c"):
            record, _ = queue.submit(tiny_document(tag))
            keys.append(record.key)
            queue.mark_running(record.key)
            queue.settle(record.key, "done")
        journal = data_dir / JOURNAL_FILE
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        # Small limit => the journal was rotated to snapshot lines at least once.
        assert any(entry["op"] == "record" for entry in lines)
        assert not list(data_dir.glob("*.tmp"))  # staging cleaned up by os.replace

        revived = JobQueue(data_dir, fsync=False)
        for key in keys:
            assert revived.get(key).state == "done"

    def test_explicit_compact_round_trips_everything(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        done, _ = queue.submit(tiny_document("done"))
        queue.settle(done.key, "done", summary={"n": 1})
        pending, _ = queue.submit(tiny_document("pending"))
        queue.compact()
        revived = JobQueue(data_dir, fsync=False)
        assert revived.get(done.key).state == "done"
        assert revived.get(done.key).summary == {"n": 1}
        assert revived.get(pending.key).state == "queued"
        assert revived.depth() == 1
