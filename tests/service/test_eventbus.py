"""EventBus fan-out is indexed by key: publish touches one job's watchers.

Regression tests for the O(subscribers) publish bottleneck — with many
SSE watchers connected, an event for job A must be delivered to A's
watchers and the firehose only, never routed through B's.
"""

from repro.service.scheduler import EventBus


def drain(subscription):
    events = []
    while True:
        event = subscription.get(timeout=0.05)
        if event is None:
            return events
        events.append(event)


class TestKeyedFanout:
    def test_publish_reaches_only_that_key_and_firehose(self):
        bus = EventBus()
        watcher_a = bus.subscribe("job-a")
        watcher_b = bus.subscribe("job-b")
        firehose = bus.subscribe(None)

        bus.publish("queued", "job-a", "A", "queued")
        assert [e["key"] for e in drain(watcher_a)] == ["job-a"]
        assert drain(watcher_b) == []
        assert [e["key"] for e in drain(firehose)] == ["job-a"]

    def test_multiple_watchers_per_key_all_served(self):
        bus = EventBus()
        watchers = [bus.subscribe("job-a") for _ in range(5)]
        bus.publish("done", "job-a", "A", "done")
        for watcher in watchers:
            assert [e["kind"] for e in drain(watcher)] == ["done"]

    def test_replay_survives_the_keyed_index(self):
        bus = EventBus()
        bus.publish("queued", "job-a", "A", "queued")
        bus.publish("done", "job-a", "A", "done")
        late = bus.subscribe("job-a", replay=True)
        assert [e["kind"] for e in drain(late)] == ["queued", "done"]
        cursor = bus.subscribe("job-a", replay=True, after=1)
        assert [e["kind"] for e in drain(cursor)] == ["done"]

    def test_unsubscribe_cleans_empty_buckets(self):
        bus = EventBus()
        first = bus.subscribe("job-a")
        second = bus.subscribe("job-a")
        first.close()
        assert "job-a" in bus._by_key  # one watcher still attached
        second.close()
        assert "job-a" not in bus._by_key  # settled jobs must not leak buckets
        bus.publish("done", "job-a", "A", "done")  # publishing stays safe

    def test_unsubscribe_firehose(self):
        bus = EventBus()
        firehose = bus.subscribe(None)
        firehose.close()
        assert bus._firehose == []
        bus.publish("queued", "job-a", "A", "queued")
        assert drain(firehose) == []

    def test_double_close_is_harmless(self):
        bus = EventBus()
        watcher = bus.subscribe("job-a")
        watcher.close()
        watcher.close()
        assert "job-a" not in bus._by_key

    def test_broadcast_shutdown_reaches_everyone(self):
        bus = EventBus()
        keyed = bus.subscribe("job-a")
        other = bus.subscribe("job-b")
        firehose = bus.subscribe(None)
        bus.broadcast_shutdown("drain test")
        for subscription in (keyed, other, firehose):
            kinds = [e["kind"] for e in drain(subscription)]
            assert kinds == ["shutdown"]

    def test_shutdown_not_recorded_in_history(self):
        bus = EventBus()
        bus.publish("queued", "job-a", "A", "queued")
        bus.broadcast_shutdown()
        late = bus.subscribe("job-a", replay=True)
        assert [e["kind"] for e in drain(late)] == ["queued"]
