"""Incremental per-state counts, bounded listing, and the attempts budget.

Regression tests for two load-lens bugs:

* ``counts()``/``depth()`` used to scan every record ever journaled —
  they are now tallies maintained on each transition, and these tests
  pin them to a full recount at every step (including across replay);
* resubmitting a ``failed`` job used to build a fresh record with
  ``attempts=0``, handing a poisoned job a fresh quarantine budget.
"""

import collections

import pytest

from repro.errors import ConfigurationError
from repro.runner import LayoutJob
from repro.service import JobQueue, job_to_document
from tests.conftest import build_tiny_netlist


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "service"


def assert_counts_match_recount(queue):
    recount = collections.Counter(r.state for r in queue.records())
    counts = queue.counts()
    for state, count in counts.items():
        assert count == recount.get(state, 0), (state, counts, dict(recount))
    assert queue.depth() == counts["queued"]


class TestIncrementalCounts:
    def test_counts_track_every_transition(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        a, _ = queue.submit(tiny_document("a"))
        b, _ = queue.submit(tiny_document("b"))
        assert_counts_match_recount(queue)
        queue.mark_running(a.key)
        assert_counts_match_recount(queue)
        queue.settle(a.key, "done", summary={})
        assert_counts_match_recount(queue)
        queue.mark_running(b.key)
        queue.settle(b.key, "failed", error="boom")
        assert_counts_match_recount(queue)
        # Resubmission of the failure and a forced requeue of the done job.
        queue.submit(tiny_document("b"))
        queue.requeue(a.key)
        assert_counts_match_recount(queue)
        assert queue.counts()["queued"] == 2

    def test_counts_rebuilt_on_replay(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        a, _ = queue.submit(tiny_document("a"))
        queue.mark_running(a.key)
        queue.settle(a.key, "done", summary={})
        b, _ = queue.submit(tiny_document("b"))
        queue.mark_running(b.key)  # left running: replay requeues it

        revived = JobQueue(data_dir, fsync=False)
        assert_counts_match_recount(revived)
        counts = revived.counts()
        assert counts["done"] == 1
        assert counts["queued"] == 1  # the in-flight job came back queued
        assert counts["running"] == 0

    def test_attach_does_not_change_counts(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        queue.submit(tiny_document("a"))
        _, disposition = queue.submit(tiny_document("a"))
        assert disposition == "attached"
        assert queue.counts()["queued"] == 1
        assert_counts_match_recount(queue)


class TestSelect:
    def _populated(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        for i in range(6):
            record, _ = queue.submit(tiny_document(f"job-{i}"))
            if i < 4:
                queue.mark_running(record.key)
                queue.settle(record.key, "done", summary={})
        return queue

    def test_filter_by_state(self, data_dir):
        queue = self._populated(data_dir)
        done, total = queue.select(state="done")
        assert total == 4 and len(done) == 4
        assert all(r.state == "done" for r in done)
        queued, total = queue.select(state="queued")
        assert total == 2 and len(queued) == 2

    def test_limit_keeps_newest_in_journal_order(self, data_dir):
        queue = self._populated(data_dir)
        bounded, total = queue.select(state="done", limit=2)
        assert total == 4  # total counts matches *before* the bound
        assert len(bounded) == 2
        all_done, _ = queue.select(state="done")
        assert bounded == all_done[-2:]  # newest two, still seq-ordered

    def test_unbounded_variants(self, data_dir):
        queue = self._populated(data_dir)
        assert len(queue.select(limit=0)[0]) == 6
        assert len(queue.select(limit=None)[0]) == 6
        assert queue.select()[1] == 6

    def test_unknown_state_rejected(self, data_dir):
        queue = self._populated(data_dir)
        with pytest.raises(ConfigurationError, match="unknown job state"):
            queue.select(state="exploded")


class TestAttemptsCarryOver:
    def test_resubmission_inherits_attempts(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document("crasher"))
        for _ in range(3):
            queue.mark_running(record.key)
            queue.requeue(record.key)
        queue.mark_running(record.key)
        queue.settle(record.key, "failed", error="poisoned")
        assert queue.get(record.key).attempts == 4

        resubmitted, disposition = queue.submit(tiny_document("crasher"))
        assert disposition == "requeued"
        # The poison-quarantine budget is per content hash: a resubmitted
        # crasher must NOT restart from attempts=0.
        assert resubmitted.attempts == 4

    def test_inherited_attempts_survive_replay(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document("crasher"))
        queue.mark_running(record.key)
        queue.settle(record.key, "failed", error="boom")
        queue.submit(tiny_document("crasher"))  # requeued with attempts=1

        revived = JobQueue(data_dir, fsync=False)
        assert revived.get(record.key).attempts == 1
        assert revived.get(record.key).state == "queued"

    def test_done_resubmission_keeps_done(self, data_dir):
        queue = JobQueue(data_dir, fsync=False)
        record, _ = queue.submit(tiny_document("fine"))
        queue.mark_running(record.key)
        queue.settle(record.key, "done", summary={})
        again, disposition = queue.submit(tiny_document("fine"))
        assert disposition == "done"
        assert again.attempts == 1
