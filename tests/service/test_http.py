"""HTTP API + SSE end-to-end, against an in-process service instance."""

import json
import urllib.request

import pytest

from repro.layout.export_json import layout_from_dict
from repro.runner import GeneratorSpec, LayoutJob
from repro.service import LayoutService, RemoteRunner, ServiceClient, ServiceError
from tests.conftest import build_tiny_netlist


@pytest.fixture
def service(tmp_path):
    instance = LayoutService(
        data_dir=tmp_path / "svc", inline=True, concurrency=2, fsync=False
    )
    instance.bind(port=0)
    instance.start()
    import threading

    threading.Thread(target=instance.serve_forever, daemon=True).start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.port}", timeout=30.0)


def tiny_job(tag=""):
    return LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.ping() is True

    def test_unknown_resource_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client._json("/frobnicate")

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("0" * 64)

    def test_bad_json_body_400(self, service):
        request = urllib.request.Request(
            f"http://127.0.0.1:{service.port}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_invalid_job_document_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.submit_document({"flow": "magic", "generator": {"circuit": "buffer60"}})

    def test_layout_for_unsettled_job_409(self, service, client):
        service.scheduler.stop()  # freeze dispatch so the job stays queued
        response = client.submit_job(tiny_job("frozen"))
        with pytest.raises(ServiceError, match="409"):
            client.layout_document(response["key"])

    def test_submit_and_fetch_layout(self, client):
        response = client.submit_job(tiny_job("fetch"))
        record = client.wait(response["key"], timeout=60)
        assert record["state"] == "done"
        document = client.layout_document(response["key"])
        layout = layout_from_dict(document)
        assert layout.netlist.name == "tiny"
        svg = client.layout_svg(response["key"])
        assert svg.startswith("<svg")
        assert "<title>" in svg  # labelled with the job's label + hash

    def test_sweep_submission_expands(self, client):
        response = client.submit_document(
            {"flow": "manual", "sweep": {"stage_counts": [1], "seeds": [11, 12]}}
        )
        assert len(response["jobs"]) == 2
        assert {row["disposition"] for row in response["jobs"]} == {"queued"}
        for row in response["jobs"]:
            assert client.wait(row["key"], timeout=120)["state"] == "done"

    def test_jobs_listing(self, client):
        response = client.submit_job(tiny_job("listed"))
        keys = [row["key"] for row in client.jobs()]
        assert response["key"] in keys

    def test_job_routes_accept_the_printed_key_prefix(self, client):
        key = client.submit_job(tiny_job("prefixed"))["key"]
        client.wait(key, timeout=60)
        record = client.status(key[:12])  # what the CLI prints
        assert record["key"] == key
        assert client.layout_document(key[:12])["circuit"] == "tiny"
        with pytest.raises(ServiceError, match="404"):
            client.status(key[:4])  # too short to be safe

    def test_events_close_for_jobs_settled_in_a_previous_epoch(self, tmp_path):
        import threading

        # Epoch 1 solves the job and shuts down (its event bus dies with it).
        first = LayoutService(
            data_dir=tmp_path / "epoch", inline=True, concurrency=1, fsync=False
        )
        first.bind(port=0)
        first.start()
        client = ServiceClient(f"http://127.0.0.1:{first.port}")
        threading.Thread(target=first.serve_forever, daemon=True).start()
        key = client.submit_job(tiny_job("epochal"))["key"]
        client.wait(key, timeout=60)
        first.shutdown()

        # Epoch 2 replays the journal; its bus has no history for the key,
        # so the stream must synthesize the terminal event and close.
        second = LayoutService(
            data_dir=tmp_path / "epoch", inline=True, concurrency=1, fsync=False
        )
        second.bind(port=0)
        second.start()
        client = ServiceClient(f"http://127.0.0.1:{second.port}")
        threading.Thread(target=second.serve_forever, daemon=True).start()
        try:
            events = list(client.iter_events(key, timeout=10))
            assert events, "stream produced nothing"
            assert events[-1]["kind"] == "done"
            assert events[-1]["seq"] == 0  # synthesized from the journal
        finally:
            second.shutdown()

    def test_iter_events_enforces_an_overall_deadline(self, service, client):
        service.scheduler.stop()  # nothing will ever dispatch
        key = client.submit_job(tiny_job("stuck"))["key"]
        import time as time_module

        started = time_module.monotonic()
        with pytest.raises(ServiceError, match="timed out"):
            list(client.iter_events(key, timeout=0.5))
        assert time_module.monotonic() - started < 30.0


class TestAcceptance:
    """The ISSUE's end-to-end criterion, minus the daemon-restart leg
    (which lives in test_crash_recovery.py): the same buffer60 manual-flow
    job twice over HTTP — first solves, second is served from the cache —
    with an SSE client observing queued → running → done."""

    def test_buffer60_twice_with_sse(self, client):
        job = LayoutJob(flow="manual", generator=GeneratorSpec("buffer60"))

        first = client.submit_job(job)
        assert first["disposition"] in ("queued", "attached")
        events = [event["kind"] for event in client.iter_events(first["key"])]
        filtered = [kind for kind in events if kind != "progress"]
        assert filtered[0] == "queued"
        assert "running" in filtered
        assert filtered[-1] == "done"

        record = client.wait(first["key"], timeout=120)
        assert record["state"] == "done"
        assert record["summary"]["served"] == "solve"
        hits_before = client.stats()["cache"]["hits"]
        solved_before = client.stats()["solved"]

        second = client.submit_job(job)
        assert second["key"] == first["key"]
        assert second["disposition"] == "cached"
        assert second["state"] == "done"
        stats = client.stats()
        assert stats["cache"]["hits"] == hits_before + 1  # verified via /stats
        assert stats["solved"] == solved_before  # not re-solved
        assert stats["cache"]["lookups"] >= stats["cache"]["hits"]


class TestRemoteRunner:
    def test_experiment_harness_interface(self, service, client):
        runner = RemoteRunner(client, client="tests")
        jobs = [tiny_job("rr1"), tiny_job("rr2")]
        outcomes = runner.run(jobs)
        assert [outcome.ok for outcome in outcomes] == [True, True]
        flow_result = outcomes[0].flow_result()
        assert flow_result.layout.netlist.name == "tiny"
        assert flow_result.metrics is not None

        # Second run round-trips through the service's cache.
        again = runner.run(jobs)
        assert all(outcome.status == "cached" for outcome in again)
        assert runner.cache_stats()["hits"] >= 2

    def test_remote_runner_maps_broken_records_to_failed_outcomes(self, client):
        runner = RemoteRunner(client)
        outcome = runner._outcome(
            tiny_job("map"),
            "deadbeef",
            {"state": "timeout", "error": "too slow", "runtime": 1.5},
        )
        assert outcome.status == "timeout"
        assert not outcome.ok
        assert outcome.error == "too slow"
        assert outcome.runtime == 1.5


class TestCacheIntegrityEndpoint:
    def test_clean_cache_reports_200_clean(self, service, client):
        response = client.submit_job(tiny_job("integ"))
        client.wait(response["key"], timeout=60.0)
        report = client._json("/cache/integrity")
        assert report["clean"] is True
        assert report["repair"] is False  # the endpoint is read-only
        assert report["entries_scanned"] >= 1
        assert report["entries_corrupt"] == 0

    def test_corrupt_entry_reports_503_with_the_key(self, service, client):
        response = client.submit_job(tiny_job("integ-dirty"))
        key = response["key"]
        client.wait(key, timeout=60.0)
        layout = service.scheduler.cache.entry_dir(key) / "layout.json"
        data = bytearray(layout.read_bytes())
        data[10] ^= 0xFF
        layout.write_bytes(bytes(data))
        with pytest.raises(ServiceError, match="503"):
            client._json("/cache/integrity")
        # Read-only: the corrupt entry is still in place, not quarantined.
        assert layout.exists()
        # A subsequent fetch of the layout never serves the corrupt bytes.
        with pytest.raises(ServiceError):
            client.layout_document(key)
