"""``GET /jobs`` filtering: ``?state=`` / ``?limit=`` with a bounded default.

The unbounded listing used to serialize every record ever journaled;
after a long load run that is tens of thousands of settled jobs per
request.  The endpoint now serves the newest ``limit`` matches (default
500) plus a ``total`` so truncation is detectable.
"""

import threading

import pytest

from repro.runner import LayoutJob
from repro.service import LayoutService, ServiceClient, ServiceError
from tests.conftest import build_tiny_netlist


@pytest.fixture
def service(tmp_path):
    instance = LayoutService(
        data_dir=tmp_path / "svc", inline=True, concurrency=2, fsync=False
    )
    instance.bind(port=0)
    instance.start()
    threading.Thread(target=instance.serve_forever, daemon=True).start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.port}", timeout=30.0)


def tiny_job(tag=""):
    return LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)


def submit_and_settle(service, client, count):
    keys = [client.submit_job(tiny_job(f"listing-{i}"))["key"] for i in range(count)]
    for key in keys:
        client.wait(key, timeout=60.0)
    return keys


class TestJobsListing:
    def test_state_filter(self, service, client):
        submit_and_settle(service, client, 3)
        service.scheduler.stop()  # freeze dispatch: the next job stays queued
        client.submit_job(tiny_job("stuck"))

        page = client.jobs_page(state="done")
        assert page["total"] == 3
        assert [r["state"] for r in page["jobs"]] == ["done"] * 3
        page = client.jobs_page(state="queued")
        assert page["total"] == 1

    def test_limit_returns_newest_with_total(self, service, client):
        keys = submit_and_settle(service, client, 4)
        page = client.jobs_page(limit=2)
        assert page["total"] == 4
        assert len(page["jobs"]) == 2
        # The newest records (by admission seq) survive the bound.
        returned = [r["key"] for r in page["jobs"]]
        assert returned == keys[-2:]

    def test_limit_zero_is_unbounded(self, service, client):
        submit_and_settle(service, client, 3)
        page = client.jobs_page(limit=0)
        assert page["total"] == 3
        assert len(page["jobs"]) == 3

    def test_default_listing_is_bounded(self, service, client):
        submit_and_settle(service, client, 2)
        page = client.jobs_page()
        assert page["limit"] == 500  # the bounded default is explicit
        assert page["total"] == 2

    def test_bad_state_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.jobs_page(state="exploded")

    def test_bad_limit_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client._json("/jobs?limit=banana")

    def test_jobs_helper_still_returns_list(self, service, client):
        submit_and_settle(service, client, 1)
        jobs = client.jobs(state="done")
        assert isinstance(jobs, list) and jobs[0]["state"] == "done"
