"""Concurrency hammer: ``/stats`` counters must be *exact* under load.

Before the counters moved under ``_counters_lock`` the scheduler mutated
them with bare read-modify-write ``+=`` from every dispatcher and HTTP
thread; under concurrent submission the counts silently drifted.  These
tests fail on that implementation and pin the fix.
"""

import collections
import threading

import pytest

from repro.runner import LayoutJob
from repro.runner.cache import ResultCache
from repro.service import JobQueue, LayoutScheduler, job_to_document
from tests.conftest import build_tiny_netlist


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


def make_scheduler(tmp_path, name="svc", concurrency=2):
    queue = JobQueue(tmp_path / name, fsync=False)
    cache = ResultCache(tmp_path / f"{name}-cache")
    return LayoutScheduler(
        queue=queue, cache=cache, concurrency=concurrency, pool_workers=0
    )


def test_bump_is_atomic_across_16_threads(tmp_path):
    """The raw counter primitive: 16 threads x 2000 increments, no loss."""
    scheduler = make_scheduler(tmp_path)
    threads = [
        threading.Thread(
            target=lambda: [scheduler._bump("_solved") for _ in range(2000)]
        )
        for _ in range(16)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert scheduler._solved == 16 * 2000


def test_stats_exact_after_concurrent_submissions(tmp_path):
    """8 submitter threads, mixed fresh/duplicate jobs: counters reconcile
    exactly against the dispositions every thread observed."""
    scheduler = make_scheduler(tmp_path, concurrency=2)
    scheduler.start()
    try:
        documents = [tiny_document(tag=f"hammer-{i}") for i in range(12)]
        per_thread: list = []
        barrier = threading.Barrier(8)

        def submit_wave(thread_index):
            tally = collections.Counter()
            barrier.wait()  # maximal contention: all threads enter together
            for i in range(24):
                document = documents[(thread_index + i) % len(documents)]
                _, disposition = scheduler.submit(
                    document, client=f"hammer-{thread_index}"
                )
                tally[disposition] += 1
            per_thread.append(tally)

        threads = [
            threading.Thread(target=submit_wave, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        done = threading.Event()

        def all_settled():
            counts = scheduler.queue.counts()
            return counts["queued"] + counts["running"] == 0

        for _ in range(600):
            if all_settled():
                done.set()
                break
            threading.Event().wait(0.05)
        assert done.is_set(), "jobs never settled"

        tally = collections.Counter()
        for partial in per_thread:
            tally.update(partial)
        assert sum(tally.values()) == 8 * 24

        stats = scheduler.stats()
        # Exactly one server counter bump per disposition path:
        assert stats["attached"] == tally["attached"]
        assert (
            stats["solved"] + stats["served_from_cache"] + stats["failures"]
            == tally["queued"] + tally["requeued"] + tally["cached"]
        )
        assert stats["failures"] == 0
        assert stats["solved"] == len(documents)
        # And the journal's per-state counts agree with a full recount.
        recount = collections.Counter(r.state for r in scheduler.queue.records())
        for state, count in scheduler.queue.counts().items():
            assert count == recount.get(state, 0)
    finally:
        scheduler.stop()


def test_stats_document_is_a_coherent_snapshot(tmp_path):
    """stats() reads all nine counters under one lock acquisition — a
    reader racing the hammer above must never see a half-updated set.
    Structural check: the snapshot keys exist and are ints."""
    scheduler = make_scheduler(tmp_path)
    stats = scheduler.stats()
    for key in ("solved", "served_from_cache", "attached", "failures"):
        assert isinstance(stats[key], int)
    for key in ("rejected", "shed"):
        assert isinstance(stats["admission"][key], int)
    for key in ("dispatcher_restarts", "crash_retries", "poisoned"):
        assert isinstance(stats["supervision"][key], int)
