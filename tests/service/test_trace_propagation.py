"""Trace propagation across the fork boundary and across daemon restarts.

Two invariants from the observability layer:

* the trace ID minted at admission survives the pickle across the fork
  boundary into the worker process and comes back on the outcome, along
  with the worker's solve profile;
* after a daemon restart the trace ID survives journal replay, and span
  trees for jobs settled in the dead epoch are *synthesized* from the
  journal and marked ``truncated`` — degraded, never dropped.
"""

import threading

import pytest

from repro.runner import BatchRunner, LayoutJob
from repro.service import LayoutService, ServiceClient
from tests.conftest import build_tiny_netlist


def tiny_job(tag="", trace_id=""):
    return LayoutJob(
        flow="manual", netlist=build_tiny_netlist(), tag=tag, trace_id=trace_id
    )


class TestForkBoundary:
    def test_trace_id_and_profile_cross_the_fork(self, tmp_path):
        """A real worker process: trace rides the pickle out and back."""
        runner = BatchRunner(workers=1, cache_dir=tmp_path / "cache")
        outcome = runner.run([tiny_job("fork", trace_id="feedfacefeedface")])[0]
        assert outcome.status == "completed"
        assert outcome.trace_id == "feedfacefeedface"
        profile = outcome.profile
        assert profile is not None
        assert profile["total_s"] > 0
        assert profile["cache_put_s"] >= 0

    def test_trace_id_not_part_of_the_content_hash(self):
        plain = tiny_job("hash")
        traced = tiny_job("hash", trace_id="feedfacefeedface")
        assert plain.content_hash == traced.content_hash

    def test_cache_hit_keeps_the_submitting_trace(self, tmp_path):
        runner = BatchRunner(workers=0, cache_dir=tmp_path / "cache")
        first = runner.run([tiny_job("cached", trace_id="trace-one-000000")])[0]
        assert first.status == "completed"
        second = runner.run([tiny_job("cached", trace_id="trace-two-000000")])[0]
        assert second.status == "cached"
        # The serve belongs to the *second* submission's trace.
        assert second.trace_id == "trace-two-000000"
        # The entry still carries the original run's cost breakdown.
        assert second.profile is not None


class TestDaemonRestart:
    def _boot(self, tmp_path):
        service = LayoutService(
            data_dir=tmp_path / "svc", inline=True, concurrency=1, fsync=False
        )
        service.bind(port=0)
        service.start()
        threading.Thread(target=service.serve_forever, daemon=True).start()
        return service, ServiceClient(
            f"http://127.0.0.1:{service.port}", timeout=30.0
        )

    def test_trace_id_survives_journal_replay(self, tmp_path):
        service, client = self._boot(tmp_path)
        try:
            response = client.submit_document(
                {
                    "flow": "manual",
                    "netlist": tiny_job().canonical_dict()["netlist"],
                    "tag": "replay",
                },
                trace_id="0123456789abcdef",
            )
            key = response["key"]
            client.wait(key, timeout=60)
        finally:
            service.shutdown()

        # Second epoch over the same journal: the record (and its trace
        # ID) must come back from replay.
        service2, client2 = self._boot(tmp_path)
        try:
            record = client2.status(key)
            assert record["state"] == "done"
            assert record["trace_id"] == "0123456789abcdef"

            trace = client2.trace(key)
            assert trace["trace"] == "0123456789abcdef"
            # The in-memory spans died with epoch one; the tree is
            # synthesized from journal timestamps, flagged truncated.
            assert trace["truncated"] is True
            assert trace["spans"], "crashed-epoch spans dropped, not truncated"
            for span in trace["spans"]:
                assert span["truncated"] is True
            assert trace["total_s"] is not None
        finally:
            service2.shutdown()

    def test_replayed_pending_job_gets_truncated_admission_span(self, tmp_path):
        service, client = self._boot(tmp_path)
        try:
            service.scheduler.stop()  # freeze dispatch: job stays queued
            response = client.submit_document(
                {
                    "flow": "manual",
                    "netlist": tiny_job().canonical_dict()["netlist"],
                    "tag": "pending",
                },
                trace_id="fedcba9876543210",
            )
            key = response["key"]
        finally:
            service.shutdown()

        # Epoch two dispatches the replayed job for real.
        service2, client2 = self._boot(tmp_path)
        try:
            record = client2.wait(key, timeout=60)
            assert record["state"] == "done"
            assert record["trace_id"] == "fedcba9876543210"
            trace = client2.trace(key)
            names = {span["name"]: span for span in trace["spans"]}
            # The admission happened in the dead epoch: its span is
            # synthesized (truncated); the live dispatch/worker spans are
            # genuine measurements.
            assert names["admission"]["truncated"] is True
            assert "truncated" not in names["worker"]
            assert trace["truncated"] is True
        finally:
            service2.shutdown()
