"""Scheduler policy: dispatch, dedup, cache short-circuit, priority, fairness."""

import time

import pytest

from repro.runner import LayoutJob
from repro.runner.cache import ResultCache
from repro.service import JobQueue, LayoutScheduler, job_to_document
from tests.conftest import build_tiny_netlist


def tiny_document(tag=""):
    return job_to_document(
        LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)
    )


def make_scheduler(tmp_path, name="svc", concurrency=1):
    queue = JobQueue(tmp_path / name, fsync=False)
    cache = ResultCache(tmp_path / f"{name}-cache")
    return LayoutScheduler(
        queue=queue, cache=cache, concurrency=concurrency, pool_workers=0
    )


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def scheduler(tmp_path):
    instance = make_scheduler(tmp_path)
    yield instance
    instance.stop()


class TestDispatch:
    def test_job_runs_to_done_with_full_event_stream(self, scheduler):
        subscription = scheduler.bus.subscribe(None, replay=False)
        scheduler.start()
        record, disposition = scheduler.submit(tiny_document())
        assert disposition == "queued"
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        settled = scheduler.queue.get(record.key)
        assert settled.state == "done"
        assert settled.summary["served"] == "solve"
        kinds = []
        while True:
            event = subscription.get(timeout=0.2)
            if event is None:
                break
            kinds.append(event["kind"])
        assert [k for k in kinds if k != "progress"] == ["queued", "running", "done"]

    def test_sse_history_replays_after_settlement(self, scheduler):
        scheduler.start()
        record, _ = scheduler.submit(tiny_document())
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        late = scheduler.bus.subscribe(record.key, replay=True)
        kinds = []
        while True:
            event = late.get(timeout=0.2)
            if event is None:
                break
            kinds.append(event["kind"])
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"

    def test_unresolvable_job_rejected_at_admission(self, scheduler):
        from repro.errors import ReproError

        document = tiny_document()
        document["generator"] = {"circuit": "no-such-circuit"}
        document.pop("netlist")
        with pytest.raises(ReproError):
            scheduler.submit(document)  # hash resolution fails => HTTP 400

    def test_dispatch_error_settles_as_failed(self, scheduler):
        record, _ = scheduler.submit(tiny_document())
        record.document["flow"] = "magic"  # poison the stored job document
        scheduler.start()
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        assert scheduler.queue.get(record.key).state == "failed"
        assert scheduler.stats()["failures"] == 1


class TestDedupAndCache:
    def test_identical_submission_attaches_while_pending(self, scheduler):
        # Scheduler not started: the first submission stays queued.
        first, _ = scheduler.submit(tiny_document())
        second, disposition = scheduler.submit(tiny_document())
        assert disposition == "attached"
        assert second.key == first.key
        assert scheduler.stats()["attached"] == 1
        scheduler.start()
        assert wait_until(lambda: scheduler.queue.get(first.key).state == "done")
        assert scheduler.stats()["solved"] == 1  # one solve despite two submissions

    def test_settled_job_resubmission_serves_from_cache(self, scheduler):
        scheduler.start()
        record, _ = scheduler.submit(tiny_document())
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        hits_before = scheduler.cache.stats.hits
        again, disposition = scheduler.submit(tiny_document())
        assert disposition == "cached"
        assert again.state == "done"
        assert scheduler.cache.stats.hits == hits_before + 1
        assert scheduler.stats()["solved"] == 1  # never re-solved

    def test_vanished_cache_entry_forces_requeue(self, scheduler):
        import shutil

        scheduler.start()
        record, _ = scheduler.submit(tiny_document())
        assert wait_until(lambda: scheduler.queue.get(record.key).terminal)
        scheduler.stop()
        shutil.rmtree(scheduler.cache.root)  # the layout is gone for good

        requeued, disposition = scheduler.submit(tiny_document())
        assert disposition == "requeued"
        assert requeued.state == "queued"
        scheduler.start()
        assert wait_until(lambda: scheduler.queue.get(record.key).state == "done")
        assert scheduler.stats()["solved"] == 2  # genuinely re-solved
        assert scheduler.cache.peek_key(record.key) is not None  # layout restored

    def test_cache_short_circuit_across_epochs(self, tmp_path):
        # First epoch solves and fills the cache.
        first = make_scheduler(tmp_path, "first")
        first.start()
        record, _ = first.submit(tiny_document())
        assert wait_until(lambda: first.queue.get(record.key).terminal)
        first.stop()

        # Second epoch: fresh journal, same cache => settle without running.
        queue = JobQueue(tmp_path / "second", fsync=False)
        second = LayoutScheduler(
            queue=queue, cache=first.cache, concurrency=1, pool_workers=0
        )
        try:
            revived, disposition = second.submit(tiny_document())
            assert disposition == "cached"
            assert revived.state == "done"
            assert revived.summary["served"] == "cache"
            assert second.stats()["solved"] == 0
            assert second.stats()["served_from_cache"] == 1
        finally:
            second.stop()


class TestOrdering:
    def test_priority_classes_dispatch_best_first(self, scheduler):
        # Submit before starting so ordering is purely the scheduler's choice.
        scheduler.submit(tiny_document("bg"), priority="background")
        scheduler.submit(tiny_document("ia"), priority="interactive")
        scheduler.submit(tiny_document("bt"), priority="batch")
        scheduler.start()
        assert wait_until(lambda: all(r.terminal for r in scheduler.queue.records()))
        records = {r.document["tag"]: r for r in scheduler.queue.records()}
        assert (
            records["ia"].started_unix
            <= records["bt"].started_unix
            <= records["bg"].started_unix
        )

    def test_per_client_fairness_round_robins(self, scheduler):
        scheduler.submit(tiny_document("a1"), client="alice")
        scheduler.submit(tiny_document("a2"), client="alice")
        scheduler.submit(tiny_document("b1"), client="bob")
        scheduler.start()
        assert wait_until(lambda: all(r.terminal for r in scheduler.queue.records()))
        records = {r.document["tag"]: r for r in scheduler.queue.records()}
        # alice went first (FIFO), then bob (least recently served), then alice.
        assert (
            records["a1"].started_unix
            <= records["b1"].started_unix
            <= records["a2"].started_unix
        )


class TestStats:
    def test_stats_document_shape(self, scheduler):
        stats = scheduler.stats()
        for field in (
            "uptime_s",
            "queue_depth",
            "jobs",
            "solved",
            "served_from_cache",
            "attached",
            "failures",
            "replayed_from_journal",
            "cache",
            "journal_dropped_lines",
        ):
            assert field in stats
        assert stats["cache"]["lookups"] == 0
        assert set(stats["jobs"]) == {
            "queued",
            "running",
            "done",
            "failed",
            "timeout",
            "cancelled",
        }
