"""The in-daemon SLO monitor: /slo, rfic_slo_* gauges, one-snapshot
agreement with /stats, and the off-cost-when-unconfigured contract."""

import threading

import pytest

from repro.obs.metrics import parse_prometheus
from repro.obs.slo import SLOConfig
from repro.runner import LayoutJob
from repro.service import LayoutService, ServiceClient
from repro.service.scheduler import QueueSaturated
from tests.conftest import build_tiny_netlist


def tiny_job(tag=""):
    return LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)


def make_service(tmp_path, **kwargs):
    instance = LayoutService(
        data_dir=tmp_path / "svc", inline=True, concurrency=2, fsync=False,
        **kwargs,
    )
    instance.bind(port=0)
    instance.start()
    threading.Thread(target=instance.serve_forever, daemon=True).start()
    return instance


@pytest.fixture
def slo_service(tmp_path):
    instance = make_service(
        tmp_path,
        slo=SLOConfig(
            availability_objective=0.5,
            latency_p95_target_s=30.0,
            window_s=600.0,
            sample_interval_s=0.2,
        ),
    )
    yield instance
    instance.shutdown()


@pytest.fixture
def client(slo_service):
    return ServiceClient(f"http://127.0.0.1:{slo_service.port}", timeout=30.0)


class TestUnconfigured:
    def test_no_thread_no_gauges_no_document(self, tmp_path):
        instance = make_service(tmp_path)
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{instance.port}", timeout=30.0
            )
            client.wait(client.submit_job(tiny_job("u1"))["key"], timeout=60)
            # Off-cost: no monitor, no sampler thread.
            assert instance.scheduler._slo_monitor is None
            assert instance.scheduler._slo_thread is None
            assert client.slo() == {"configured": False}
            families = parse_prometheus(client.metrics_text())
            assert not any(name.startswith("rfic_slo_") for name in families)
            assert client.stats()["slo"] == {"configured": False}
        finally:
            instance.shutdown()


class TestConfigured:
    def test_sampler_thread_runs_and_is_not_a_dispatcher(self, slo_service):
        scheduler = slo_service.scheduler
        assert scheduler._slo_thread is not None
        assert scheduler._slo_thread.is_alive()
        # health() counts dispatchers only; the sampler must not inflate it.
        assert scheduler.health()["dispatchers_alive"] == 2

    def test_slo_document_reflects_served_traffic(self, client):
        client.wait(client.submit_job(tiny_job("s1"))["key"], timeout=60)
        doc = client.slo()
        assert doc["configured"] is True
        assert doc["window_s"] == 600.0
        availability = doc["availability"]
        assert availability["objective"] == 0.5
        assert availability["good"] >= 1
        assert availability["ratio"] == 1.0
        assert availability["burn_rate"] == 0.0
        latency = doc["latency"]
        assert latency["target_p95_s"] == 30.0
        assert latency["count"] >= 1
        lower, upper = latency["p95_bounds_s"]
        assert lower >= 0.0 and (upper is None or upper > lower)
        assert doc["ok"] is True

    def test_gauges_agree_with_stats_and_slo_from_one_snapshot(self, client):
        client.wait(client.submit_job(tiny_job("s2"))["key"], timeout=60)
        stats = client.stats()
        slo_doc = client.slo()
        families = parse_prometheus(client.metrics_text())

        def gauge(name):
            return families[name]["samples"][0]["value"]

        # The wire documents are separate scrapes (counters can move
        # between them), but the *objective* fields are config-stable and
        # the structural agreement must hold on every scrape.
        for doc in (stats["slo"], slo_doc):
            assert doc["configured"] is True
            assert doc["availability"]["objective"] == gauge(
                "rfic_slo_availability_objective"
            )
            assert doc["latency"]["target_p95_s"] == gauge(
                "rfic_slo_latency_target_s"
            )
            assert doc["window_s"] == gauge("rfic_slo_window_seconds")
        assert gauge("rfic_slo_ok") == 1.0

    def test_one_snapshot_invariant_exactly(self, slo_service):
        # Straight at the scheduler: one metrics_snapshot() feeds both
        # the gauge values and the /slo projection, so they must agree
        # to the digit — no "separate scrape" caveat.
        scheduler = slo_service.scheduler
        snapshot = scheduler.metrics_snapshot()

        def value(name):
            return scheduler._snapshot_value(snapshot, name)

        doc = scheduler._slo_from_snapshot(snapshot)
        availability = doc["availability"]
        assert availability["ratio"] == value("rfic_slo_availability_ratio")
        assert availability["burn_rate"] == value(
            "rfic_slo_error_budget_burn_rate"
        )
        assert availability["good"] == value("rfic_slo_window_good")
        assert availability["bad"] == value("rfic_slo_window_bad")
        assert doc["ok"] == (value("rfic_slo_ok") >= 1.0)
        assert doc["latency"]["count"] == value(
            "rfic_slo_window_latency_count"
        )

    def test_rejections_burn_the_budget(self, tmp_path):
        # A tiny queue bound plus a saturating flood: rejected
        # submissions must show up as windowed "bad" and move the ratio.
        instance = make_service(
            tmp_path,
            max_queue_depth=1,
            slo=SLOConfig(availability_objective=0.5, window_s=600.0),
        )
        try:
            scheduler = instance.scheduler
            document = {
                "flow": "manual",
                "netlist": tiny_job("flood").canonical_dict()["netlist"],
                "tag": "flood",
            }
            rejected = 0
            for i in range(30):
                try:
                    scheduler.submit(dict(document, tag=f"flood-{i}"))
                except QueueSaturated:
                    rejected += 1
            assert rejected > 0
            doc = scheduler.slo_document()
            availability = doc["availability"]
            assert availability["bad"] == rejected
            assert availability["ratio"] < 1.0
            assert availability["burn_rate"] > 0.0
        finally:
            instance.shutdown()
