"""The observability layer end-to-end: /metrics, /stats coherence, traces.

Everything here runs against a real in-process daemon (inline execution)
with the tiny manual-flow job, so the tier stays fast.
"""

import threading

import pytest

from repro.obs.metrics import parse_prometheus
from repro.runner import LayoutJob
from repro.service import LayoutService, ServiceClient
from tests.conftest import build_tiny_netlist


@pytest.fixture
def service(tmp_path):
    instance = LayoutService(
        data_dir=tmp_path / "svc", inline=True, concurrency=2, fsync=False
    )
    instance.bind(port=0)
    instance.start()
    threading.Thread(target=instance.serve_forever, daemon=True).start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.port}", timeout=30.0)


def tiny_job(tag=""):
    return LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag=tag)


class TestMetricsEndpoint:
    def test_exposition_is_parse_clean(self, client):
        client.wait(client.submit_job(tiny_job("m1"))["key"], timeout=60)
        text = client.metrics_text()
        families = parse_prometheus(text)  # raises on any malformed line
        assert families["rfic_jobs_solved_total"]["kind"] == "counter"
        assert families["rfic_job_latency_seconds"]["kind"] == "histogram"
        assert families["rfic_queue_depth"]["kind"] == "gauge"
        # Histogram series end at +Inf and agree with their _count.
        buckets = [
            sample
            for sample in families["rfic_job_latency_seconds"]["samples"]
            if sample["name"].endswith("_bucket")
        ]
        assert any(sample["labels"].get("le") == "+Inf" for sample in buckets)

    def test_metrics_and_stats_agree(self, client):
        key = client.submit_job(tiny_job("m2"))["key"]
        client.wait(key, timeout=60)
        client.submit_job(tiny_job("m2"))  # cache serve at admission
        stats = client.stats()
        families = parse_prometheus(client.metrics_text())

        def value(name):
            return families[name]["samples"][0]["value"]

        assert value("rfic_jobs_solved_total") == stats["solved"]
        assert (
            value("rfic_jobs_served_from_cache_total")
            == stats["served_from_cache"]
        )
        assert value("rfic_jobs_failed_total") == stats["failures"]
        # /stats carries the histogram summaries from the same snapshot.
        latency = stats["metrics"]["job_latency_s"]
        count_sample = next(
            sample
            for sample in families["rfic_job_latency_seconds"]["samples"]
            if sample["name"].endswith("_count")
        )
        assert latency["count"] == count_sample["value"]

    def test_stage_histograms_reconcile_with_latency(self, client):
        for tag in ("s1", "s2", "s3"):
            client.wait(client.submit_job(tiny_job(tag))["key"], timeout=60)
        stats = client.stats()
        metrics = stats["metrics"]
        stages = metrics["stages_s"]
        stage_sum = sum(stages[name]["sum_s"] for name in stages)
        latency_sum = metrics["job_latency_s"]["sum_s"]
        assert stage_sum == pytest.approx(latency_sum, abs=0.05)
        for name in stages:
            assert stages[name]["count"] == metrics["job_latency_s"]["count"]


class TestTraceEndpoint:
    def test_trace_header_is_honoured(self, client):
        response = client.submit_document(
            {
                "flow": "manual",
                "netlist": tiny_job("t1").canonical_dict()["netlist"],
                "tag": "t1",
            },
            trace_id="cafecafecafecafe",
        )
        assert response["trace_id"] == "cafecafecafecafe"
        client.wait(response["key"], timeout=60)
        trace = client.trace(response["key"])
        assert trace["trace"] == "cafecafecafecafe"

    def test_span_tree_sums_to_end_to_end_latency(self, client):
        key = client.submit_job(tiny_job("t2"))["key"]
        client.wait(key, timeout=60)
        trace = client.trace(key)
        assert trace["truncated"] is False
        names = [span["name"] for span in trace["spans"]]
        for expected in ("admission", "queue_wait", "dispatch", "worker", "settle"):
            assert expected in names, names
        # Top-level spans cover the record's end-to-end latency to within
        # the (small) untraced overhead.
        assert trace["total_s"] is not None
        assert trace["span_sum_s"] == pytest.approx(trace["total_s"], abs=0.25)
        # Child spans nest under the worker span.
        for span in trace["spans"]:
            if span.get("parent"):
                assert span["parent"] == "worker"

    def test_unknown_trace_key_404(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError, match="404"):
            client.trace("0" * 64)

    def test_trace_id_minted_when_header_absent(self, client):
        response = client.submit_job(tiny_job("t3"))
        assert len(response["trace_id"]) == 16


class TestSSETraceFields:
    def test_events_carry_trace_and_progress_elapsed(self, client):
        response = client.submit_document(
            {
                "flow": "manual",
                "netlist": tiny_job("sse").canonical_dict()["netlist"],
                "tag": "sse",
            },
            trace_id="beefbeefbeefbeef",
        )
        events = list(client.iter_events(response["key"], timeout=60))
        assert events, "stream closed without any events"
        for event in events:
            assert "trace" in event
        live = [event for event in events if event["seq"] > 0]
        assert any(event["trace"] == "beefbeefbeefbeef" for event in live)
        progress = [event for event in events if event["kind"] == "progress"]
        for event in progress:
            assert event["elapsed_s"] >= 0
