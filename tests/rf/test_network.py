"""Unit tests for two-port network algebra and S-parameters."""

import numpy as np
import pytest

from repro.errors import RFError
from repro.rf import SParameters, TwoPortNetwork, open_stub_admittance, short_stub_admittance


@pytest.fixture
def frequencies():
    return np.linspace(50e9, 70e9, 21)


class TestConstruction:
    def test_identity_is_transparent(self, frequencies):
        sparams = TwoPortNetwork.identity(frequencies).to_sparameters()
        assert np.allclose(np.abs(sparams.s21), 1.0)
        assert np.allclose(np.abs(sparams.s11), 0.0, atol=1e-12)

    def test_invalid_frequency_grid(self):
        with pytest.raises(RFError):
            TwoPortNetwork.identity([])
        with pytest.raises(RFError):
            TwoPortNetwork.identity([-1.0e9])

    def test_shape_mismatch_rejected(self, frequencies):
        with pytest.raises(RFError):
            TwoPortNetwork(frequencies, np.eye(2, dtype=complex))


class TestElementaryNetworks:
    def test_series_matched_resistor_s21(self, frequencies):
        # A series 50-ohm resistor between 50-ohm ports: S21 = 2/(2 + Z/Z0) = 2/3.
        network = TwoPortNetwork.from_series_impedance(frequencies, 50.0)
        sparams = network.to_sparameters(z0=50.0)
        assert np.allclose(np.abs(sparams.s21), 2.0 / 3.0, atol=1e-9)

    def test_shunt_admittance_s21(self, frequencies):
        # A shunt 50-ohm resistor: S21 = 2/(2 + Y*Z0) = 2/3.
        network = TwoPortNetwork.from_shunt_admittance(frequencies, 1.0 / 50.0)
        sparams = network.to_sparameters(z0=50.0)
        assert np.allclose(np.abs(sparams.s21), 2.0 / 3.0, atol=1e-9)

    def test_lossless_line_is_unitary(self, frequencies):
        gamma = 1j * 2.0 * np.pi * frequencies / 3.0e8
        network = TwoPortNetwork.from_transmission_line(frequencies, gamma, 50.0, 0.001)
        sparams = network.to_sparameters(z0=50.0)
        assert np.allclose(np.abs(sparams.s21), 1.0, atol=1e-9)
        assert np.allclose(np.abs(sparams.s11), 0.0, atol=1e-9)

    def test_matched_line_phase_matches_length(self, frequencies):
        gamma = 1j * 2.0 * np.pi * frequencies / 3.0e8
        length = 0.5e-3
        network = TwoPortNetwork.from_transmission_line(frequencies, gamma, 50.0, length)
        sparams = network.to_sparameters(z0=50.0)
        expected_phase = -2.0 * np.pi * frequencies / 3.0e8 * length
        assert np.allclose(np.angle(sparams.s21), expected_phase, atol=1e-9)

    def test_negative_length_rejected(self, frequencies):
        with pytest.raises(RFError):
            TwoPortNetwork.from_transmission_line(frequencies, 1j, 50.0, -0.1)

    def test_gain_stage_has_gain(self, frequencies):
        network = TwoPortNetwork.from_voltage_controlled_source(
            frequencies, gm_siemens=0.05, input_admittance=1e-4, output_admittance=1.0 / 200.0
        )
        sparams = network.to_sparameters()
        assert np.all(sparams.s21_db > 0.0)

    def test_zero_gm_rejected(self, frequencies):
        with pytest.raises(RFError):
            TwoPortNetwork.from_voltage_controlled_source(frequencies, 0.0, 1e-4, 1e-2)


class TestComposition:
    def test_cascade_of_identities(self, frequencies):
        identity = TwoPortNetwork.identity(frequencies)
        cascade = identity @ identity @ identity
        assert np.allclose(cascade.abcd, identity.abcd)

    def test_cascade_attenuations_multiply(self, frequencies):
        series = TwoPortNetwork.from_series_impedance(frequencies, 50.0)
        double = series @ series
        single_db = series.to_sparameters().s21_db
        double_db = double.to_sparameters().s21_db
        assert np.all(double_db < single_db)

    def test_chain_helper_matches_matmul(self, frequencies):
        series = TwoPortNetwork.from_series_impedance(frequencies, 25.0)
        shunt = TwoPortNetwork.from_shunt_admittance(frequencies, 0.01)
        assert np.allclose(
            TwoPortNetwork.chain([series, shunt]).abcd, (series @ shunt).abcd
        )

    def test_chain_of_nothing_rejected(self):
        with pytest.raises(RFError):
            TwoPortNetwork.chain([])

    def test_incompatible_grids_rejected(self, frequencies):
        other = TwoPortNetwork.identity(frequencies * 2.0)
        with pytest.raises(RFError):
            TwoPortNetwork.identity(frequencies) @ other

    def test_input_impedance_of_matched_line(self, frequencies):
        gamma = 1j * 2.0 * np.pi * frequencies / 3.0e8
        network = TwoPortNetwork.from_transmission_line(frequencies, gamma, 50.0, 0.002)
        zin = network.input_impedance(load_impedance=50.0)
        assert np.allclose(zin, 50.0, atol=1e-9)


class TestSParameters:
    def test_db_views_and_interpolation(self, frequencies):
        sparams = TwoPortNetwork.from_series_impedance(frequencies, 50.0).to_sparameters()
        mid = 60e9
        values = sparams.at(mid)
        assert values["s21_db"] == pytest.approx(20 * np.log10(2.0 / 3.0), abs=1e-6)
        assert sparams.gain_db(mid) == pytest.approx(values["s21_db"])

    def test_out_of_range_frequency_rejected(self, frequencies):
        sparams = TwoPortNetwork.identity(frequencies).to_sparameters()
        with pytest.raises(RFError):
            sparams.at(500e9)

    def test_peak_gain(self, frequencies):
        sparams = TwoPortNetwork.identity(frequencies).to_sparameters()
        peak_freq, peak_gain = sparams.peak_gain()
        assert peak_gain == pytest.approx(0.0, abs=1e-9)
        assert frequencies[0] <= peak_freq <= frequencies[-1]

    def test_as_dict_keys(self, frequencies):
        data = TwoPortNetwork.identity(frequencies).to_sparameters().as_dict()
        assert set(data) >= {"frequencies_ghz", "s11_db", "s21_db", "s22_db"}

    def test_invalid_reference_impedance(self, frequencies):
        with pytest.raises(RFError):
            TwoPortNetwork.identity(frequencies).to_sparameters(z0=0.0)


class TestStubAdmittances:
    def test_quarter_wave_open_stub_is_short(self):
        frequency = 60e9
        beta = 2.0 * np.pi * frequency / 3.0e8
        quarter_wave = (3.0e8 / frequency) / 4.0
        admittance = open_stub_admittance(np.array([1j * beta]), 50.0, quarter_wave)
        assert np.abs(admittance[0]) > 1e3

    def test_short_stub_at_low_frequency_is_short(self):
        admittance = short_stub_admittance(np.array([1j * 1.0]), 50.0, 1e-6)
        assert np.abs(admittance[0]) > 1e3

    def test_negative_stub_length_rejected(self):
        with pytest.raises(RFError):
            open_stub_admittance(np.array([1j]), 50.0, -1.0)
