"""Unit tests for the thin-film microstrip electrical model."""

import numpy as np
import pytest

from repro.errors import RFError
from repro.rf import MicrostripLine
from repro.tech import CMOS65, CMOS90


@pytest.fixture
def line():
    return MicrostripLine.from_technology(CMOS90)


class TestStaticParameters:
    def test_validation(self):
        with pytest.raises(RFError):
            MicrostripLine(width=0.0, height=5.0)
        with pytest.raises(RFError):
            MicrostripLine(width=10.0, height=5.0, eps_r=0.5)
        with pytest.raises(RFError):
            MicrostripLine(width=10.0, height=5.0, loss_tangent=-0.1)

    def test_effective_permittivity_between_one_and_substrate(self, line):
        assert 1.0 < line.effective_permittivity < line.eps_r

    def test_characteristic_impedance_near_fifty_ohm(self, line):
        # The paper's technology (w = 10 um, t = 5 um over SiO2) is a
        # nominally 50-ohm microstrip.
        assert 40.0 < line.characteristic_impedance < 60.0

    def test_wider_line_has_lower_impedance(self):
        narrow = MicrostripLine(width=5.0, height=5.0)
        wide = MicrostripLine(width=20.0, height=5.0)
        assert wide.characteristic_impedance < narrow.characteristic_impedance

    def test_from_technology_width_override(self):
        default = MicrostripLine.from_technology(CMOS90)
        wide = MicrostripLine.from_technology(CMOS90, width=20.0)
        assert wide.width == 20.0
        assert default.width == CMOS90.microstrip_width

    def test_different_technologies_give_different_lines(self):
        assert (
            MicrostripLine.from_technology(CMOS65).height
            != MicrostripLine.from_technology(CMOS90).height
        )


class TestPropagation:
    def test_phase_constant_scales_with_frequency(self, line):
        beta = line.phase_constant(np.array([30e9, 60e9, 90e9]))
        assert beta[1] == pytest.approx(2.0 * beta[0], rel=1e-9)
        assert beta[2] == pytest.approx(3.0 * beta[0], rel=1e-9)

    def test_losses_increase_with_frequency(self, line):
        alpha = line.attenuation(np.array([30e9, 94e9]))
        assert alpha[1] > alpha[0]
        assert np.all(alpha > 0)

    def test_propagation_constant_is_complex(self, line):
        gamma = line.propagation_constant(np.array([60e9]))
        assert gamma[0].real > 0
        assert gamma[0].imag > 0

    def test_invalid_frequency_rejected(self, line):
        with pytest.raises(RFError):
            line.phase_constant(np.array([0.0]))

    def test_guided_wavelength_at_94ghz(self, line):
        wavelength_um = line.guided_wavelength(94e9) * 1e6
        # sqrt(eps_eff) ~ 1.75, so lambda_g ~ 3.19 mm / 1.75 ~ 1.8 mm.
        assert 1500.0 < wavelength_um < 2200.0

    def test_electrical_length_round_trip(self, line):
        degrees = line.electrical_length_deg(450.0, 94e9)
        back = line.length_for_electrical_degrees(degrees, 94e9)
        assert back == pytest.approx(450.0, rel=1e-9)

    def test_loss_db_per_mm_is_reasonable(self, line):
        loss = line.loss_db_per_mm(94e9)
        # Thin-film microstrip at W-band: on the order of a dB per mm.
        assert 0.2 < loss < 5.0
