"""Unit tests for the amplifier assembly from netlists and layouts."""

import numpy as np
import pytest

from repro.errors import RFError
from repro.rf import (
    AmplifierModel,
    ChainElement,
    SignalChain,
    default_frequency_sweep,
)
from repro.circuits import get_circuit


@pytest.fixture(scope="module")
def benchmark_circuit():
    return get_circuit("buffer60", "reduced")


@pytest.fixture(scope="module")
def model(benchmark_circuit):
    return AmplifierModel(benchmark_circuit.netlist, benchmark_circuit.chain)


@pytest.fixture(scope="module")
def frequencies(benchmark_circuit):
    return default_frequency_sweep(benchmark_circuit.netlist.operating_frequency_ghz, points=41)


class TestSignalChain:
    def test_shorthand_construction(self):
        chain = SignalChain.from_shorthand("demo", [("line", "ms1"), ("device", "M1")])
        assert chain.net_names() == ["ms1"]
        assert chain.device_names() == ["M1"]

    def test_empty_chain_rejected(self):
        with pytest.raises(RFError):
            SignalChain("demo", [])

    def test_unknown_element_kind_rejected(self):
        with pytest.raises(RFError):
            ChainElement("wire", "ms1")

    def test_benchmark_chain_references_exist(self, benchmark_circuit):
        netlist = benchmark_circuit.netlist
        for net_name in benchmark_circuit.chain.net_names():
            assert net_name in netlist.microstrip_names
        for device_name in benchmark_circuit.chain.device_names():
            assert netlist.has_device(device_name)


class TestAmplifierModel:
    def test_unknown_reference_rejected(self, benchmark_circuit):
        bad_chain = SignalChain.from_shorthand("bad", [("line", "does-not-exist")])
        with pytest.raises(RFError):
            AmplifierModel(benchmark_circuit.netlist, bad_chain)

    def test_invalid_reference_impedance(self, benchmark_circuit):
        with pytest.raises(RFError):
            AmplifierModel(benchmark_circuit.netlist, benchmark_circuit.chain, reference_impedance=0.0)

    def test_designed_response_has_gain_at_f0(self, model, benchmark_circuit, frequencies):
        sparams = model.simulate(frequencies)
        f0 = benchmark_circuit.netlist.operating_frequency_ghz * 1e9
        assert sparams.gain_db(f0) > 0.0

    def test_simulation_without_layout_uses_target_lengths(self, model, benchmark_circuit):
        length, bends = model._net_geometry(benchmark_circuit.chain.net_names()[0], None)
        net = benchmark_circuit.netlist.microstrip(benchmark_circuit.chain.net_names()[0])
        assert length == pytest.approx(net.target_length)
        assert bends == 0

    def test_extra_bends_reduce_gain(self, model, benchmark_circuit, frequencies):
        """Bends perturb the response only slightly (sub-dB)."""
        from repro.geometry import ManhattanPath, Point
        from repro.layout import Layout, RoutedMicrostrip

        netlist = benchmark_circuit.netlist
        f0 = netlist.operating_frequency_ghz * 1e9

        def layout_with_bends(bends: int) -> Layout:
            layout = Layout(netlist)
            for net in netlist.microstrips:
                target = net.target_length
                if bends == 0:
                    path = ManhattanPath([Point(0, 0), Point(target, 0)], width=10.0)
                else:
                    # A staircase with the requested number of corners and the
                    # same total geometric length.
                    step = target / (bends + 1)
                    points = [Point(0, 0)]
                    for index in range(bends):
                        previous = points[-1]
                        if index % 2 == 0:
                            points.append(Point(previous.x + step, previous.y))
                        else:
                            points.append(Point(previous.x, previous.y + step))
                    last = points[-1]
                    if bends % 2 == 0:
                        points.append(Point(last.x + step, last.y))
                    else:
                        points.append(Point(last.x, last.y + step))
                    path = ManhattanPath(points, width=10.0)
                layout.set_route(RoutedMicrostrip(net.name, path))
            return layout

        straight = model.simulate(frequencies, layout_with_bends(0)).gain_db(f0)
        bent = model.simulate(frequencies, layout_with_bends(4)).gain_db(f0)
        # Bend discontinuities are small reactive perturbations: they shift
        # the response by well under a dB (the reactive part can nudge the
        # matching either way, so only the magnitude of the change is a
        # robust invariant here; the monotone loss of the bend two-port
        # itself is asserted in the discontinuity tests).
        assert abs(bent - straight) < 1.0

    def test_gain_at_helper(self, model, benchmark_circuit):
        f0 = benchmark_circuit.netlist.operating_frequency_ghz * 1e9
        assert isinstance(model.gain_at(f0), float)


class TestFrequencySweep:
    def test_sweep_centred_on_f0(self):
        sweep = default_frequency_sweep(94.0, points=11)
        assert len(sweep) == 11
        assert sweep[0] < 94e9 < sweep[-1]
        assert np.isclose(np.median(sweep), 94e9)

    def test_invalid_sweep_parameters(self):
        with pytest.raises(RFError):
            default_frequency_sweep(0.0)
        with pytest.raises(RFError):
            default_frequency_sweep(60.0, points=1)
