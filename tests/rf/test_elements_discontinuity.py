"""Unit tests for element factories and the bend-discontinuity / δ models."""

import numpy as np
import pytest

from repro.errors import RFError
from repro.rf import (
    MicrostripLine,
    attenuator,
    bend_two_port,
    delta_versus_frequency,
    extract_delta,
    microstrip_section,
    mitred_bend,
    open_stub,
    pad_shunt,
    right_angle_bend,
    series_capacitor,
    series_inductor,
    series_resistor,
    shunt_capacitor,
    transistor_stage,
)
from repro.tech import CMOS90


@pytest.fixture
def line():
    return MicrostripLine.from_technology(CMOS90)


@pytest.fixture
def frequencies():
    return np.linspace(60e9, 120e9, 31)


class TestElements:
    def test_microstrip_section_attenuates_and_delays(self, line, frequencies):
        sparams = microstrip_section(line, 500.0, frequencies).to_sparameters()
        assert np.all(sparams.s21_db < 0.0)
        assert np.all(sparams.s21_db > -10.0)

    def test_longer_section_loses_more(self, line, frequencies):
        short = microstrip_section(line, 200.0, frequencies).to_sparameters()
        long = microstrip_section(line, 800.0, frequencies).to_sparameters()
        assert np.all(long.s21_db < short.s21_db)

    def test_zero_length_section_is_through(self, line, frequencies):
        sparams = microstrip_section(line, 0.0, frequencies).to_sparameters()
        assert np.allclose(sparams.s21_db, 0.0, atol=1e-9)

    def test_negative_length_rejected(self, line, frequencies):
        with pytest.raises(RFError):
            microstrip_section(line, -1.0, frequencies)

    def test_open_stub_loads_the_line(self, line, frequencies):
        sparams = open_stub(line, 400.0, frequencies).to_sparameters()
        assert np.all(sparams.s21_db <= 0.0)
        assert np.any(sparams.s21_db < -0.5)

    def test_series_capacitor_blocks_low_frequencies(self):
        frequencies = np.array([1e9, 100e9])
        sparams = series_capacitor(50e-15, frequencies).to_sparameters()
        assert sparams.s21_db[0] < sparams.s21_db[1]

    def test_shunt_capacitor_shorts_high_frequencies(self):
        frequencies = np.array([1e9, 100e9])
        sparams = shunt_capacitor(500e-15, frequencies).to_sparameters()
        assert sparams.s21_db[1] < sparams.s21_db[0]

    def test_series_inductor_and_resistor(self, frequencies):
        inductive = series_inductor(100e-12, frequencies).to_sparameters()
        resistive = series_resistor(25.0, frequencies).to_sparameters()
        assert np.all(inductive.s21_db < 0.0)
        assert np.allclose(
            resistive.s21_db, 20 * np.log10(2.0 / (2.0 + 0.5)), atol=1e-9
        )

    def test_invalid_component_values(self, frequencies):
        with pytest.raises(RFError):
            series_capacitor(0.0, frequencies)
        with pytest.raises(RFError):
            series_inductor(-1e-12, frequencies)
        with pytest.raises(RFError):
            series_resistor(-1.0, frequencies)

    def test_transistor_stage_gain_positive_at_mm_wave(self, frequencies):
        sparams = transistor_stage(frequencies).to_sparameters()
        assert np.all(sparams.s21_db > 0.0)

    def test_transistor_parameter_validation(self, frequencies):
        with pytest.raises(RFError):
            transistor_stage(frequencies, gm_siemens=-0.01)

    def test_pad_shunt_is_mild(self, frequencies):
        sparams = pad_shunt(frequencies).to_sparameters()
        assert np.all(sparams.s21_db > -1.0)

    def test_attenuator_hits_requested_loss(self, frequencies):
        sparams = attenuator(frequencies, loss_db=6.0).to_sparameters()
        assert np.allclose(sparams.s21_db, -6.0, atol=1e-6)
        assert np.all(np.abs(sparams.s11) < 1e-6)  # matched


class TestBendModels:
    def test_mitred_bend_has_less_capacitance(self, line):
        square = right_angle_bend(line)
        chamfered = mitred_bend(line)
        assert chamfered.excess_capacitance < square.excess_capacitance
        assert chamfered.mitred and not square.mitred

    def test_invalid_mitre_fraction(self, line):
        with pytest.raises(RFError):
            mitred_bend(line, mitre_fraction=1.5)

    def test_bend_two_port_is_mostly_transparent(self, line, frequencies):
        sparams = bend_two_port(line, frequencies).to_sparameters()
        assert np.all(sparams.s21_db > -1.0)
        assert np.all(sparams.s21_db <= 0.0)

    def test_many_bends_add_loss(self, line, frequencies):
        one = bend_two_port(line, frequencies)
        many = one @ one @ one @ one
        assert np.all(
            many.to_sparameters().s21_db <= one.to_sparameters().s21_db
        )


class TestDeltaExtraction:
    def test_delta_is_a_few_micrometres_negative(self, line):
        delta = extract_delta(line, 94e9)
        # The smoothed bend is electrically shorter than the Manhattan corner
        # by a few micrometres — same sign and magnitude as the technology
        # default used by the layout model.
        assert -20.0 < delta < 0.0

    def test_delta_requires_positive_frequency(self, line):
        with pytest.raises(RFError):
            extract_delta(line, 0.0)

    def test_delta_weakly_frequency_dependent(self, line):
        deltas = delta_versus_frequency(line, [30e9, 60e9, 94e9])
        assert np.all(deltas < 0.0)
        assert np.ptp(deltas) < 5.0

    def test_unmitred_delta_differs(self, line):
        mitred = extract_delta(line, 94e9, mitred=True)
        square = extract_delta(line, 94e9, mitred=False)
        assert mitred != pytest.approx(square)
