"""Cache integrity: digests, verify-on-read quarantine, scrub, checkpoints.

Every behaviour here protects one invariant: **a corrupt artifact is never
served**.  Reads re-verify the manifest's SHA-256 digests and quarantine
mismatches (never delete — the evidence is preserved for forensics);
``scrub`` walks the whole store; solve checkpoints carry their own digest
and degrade to a cold solve when torn.
"""

import json
import os
import time

import pytest

from repro.faults import FAULTS, FaultSpec
from repro.runner import LayoutJob, ResultCache
from repro.runner.cache import (
    CHECKPOINT_FILE,
    LAYOUT_FILE,
    MANIFEST_FILE,
    QUARANTINE_NOTE_FILE,
    STALE_STAGING_SECONDS,
    SolveCheckpointer,
)
from repro.core.checkpoint import CompletedPhase, SolveCheckpoint
from tests.conftest import build_tiny_netlist


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.clear()
    yield FAULTS
    FAULTS.clear()


@pytest.fixture(scope="module")
def manual_job_and_result():
    job = LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag="integrity")
    return job, job.run()


def stored(tmp_path, manual_job_and_result, name="cache"):
    job, result = manual_job_and_result
    cache = ResultCache(tmp_path / name)
    entry = cache.put(job, result)
    assert entry is not None
    return cache, job, entry


def flip_byte(path, offset=10):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def tiny_checkpoint(stage="phase1"):
    return SolveCheckpoint(
        stage=stage,
        completed=[CompletedPhase(stage, {"phase": stage}, {"phase": stage})],
        layout_doc={"schema_version": 1, "placements": []},
        best_layout_doc=None,
        next_iteration=0,
        objective=1.5,
        elapsed_s=0.25,
    )


class TestVerifyOnRead:
    def test_manifest_records_artifact_digests(self, tmp_path, manual_job_and_result):
        _, _, entry = stored(tmp_path, manual_job_and_result)
        manifest = json.loads((entry.directory / MANIFEST_FILE).read_text())
        assert set(manifest["artifacts"]) == {"layout.json", "metrics.json"}
        for digest in manifest["artifacts"].values():
            assert len(digest) == 64

    def test_flipped_byte_is_never_served(self, tmp_path, manual_job_and_result):
        cache, job, entry = stored(tmp_path, manual_job_and_result)
        flip_byte(entry.directory / LAYOUT_FILE)
        assert cache.get(job) is None
        assert cache.stats.quarantined == 1
        # The entry was moved aside, not deleted: evidence survives.
        assert not entry.directory.exists()
        quarantined = list((cache.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        note = json.loads((quarantined[0] / QUARANTINE_NOTE_FILE).read_text())
        assert note["key"] == job.content_hash
        assert "digest" in note["reason"]

    def test_quarantined_entry_can_be_resolved_and_restored(
        self, tmp_path, manual_job_and_result
    ):
        cache, job, _ = stored(tmp_path, manual_job_and_result)
        flip_byte(cache.entry_dir(job.content_hash) / LAYOUT_FILE)
        assert cache.get(job) is None
        # The miss is exactly what triggers a re-solve upstream; a fresh
        # put repairs the cache in place.
        entry = cache.put(job, manual_job_and_result[1])
        assert entry is not None
        assert cache.get(job) is not None

    def test_injected_read_corruption_quarantines(
        self, tmp_path, manual_job_and_result
    ):
        cache, job, _ = stored(tmp_path, manual_job_and_result)
        FAULTS.install([FaultSpec("cache.read.corrupt", action="custom")])
        assert cache.get(job) is None
        assert cache.stats.quarantined == 1
        FAULTS.clear()
        assert cache.get(job) is None  # really gone, not just masked

    def test_legacy_entry_without_digests_still_served(
        self, tmp_path, manual_job_and_result
    ):
        cache, job, entry = stored(tmp_path, manual_job_and_result)
        manifest_path = entry.directory / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        del manifest["artifacts"]
        manifest_path.write_text(json.dumps(manifest))
        assert cache.get(job) is not None  # pre-digest entries verify vacuously


class TestScrub:
    def test_clean_cache_scrubs_clean(self, tmp_path, manual_job_and_result):
        cache, _, _ = stored(tmp_path, manual_job_and_result)
        report = cache.scrub()
        assert report["clean"] is True
        assert report["entries_scanned"] == 1
        assert report["entries_ok"] == 1

    def test_scrub_quarantines_corrupt_entry_then_reruns_clean(
        self, tmp_path, manual_job_and_result
    ):
        cache, _, entry = stored(tmp_path, manual_job_and_result)
        flip_byte(entry.directory / LAYOUT_FILE)
        report = cache.scrub()
        assert report["clean"] is False
        assert report["entries_corrupt"] == 1
        assert report["entries_quarantined"] == 1
        # After repair the cache is clean again (quarantine is not dirt).
        again = cache.scrub()
        assert again["clean"] is True
        assert again["quarantine_entries"] == 1

    def test_verify_is_read_only(self, tmp_path, manual_job_and_result):
        cache, job, entry = stored(tmp_path, manual_job_and_result)
        flip_byte(entry.directory / LAYOUT_FILE)
        report = cache.verify()
        assert report["clean"] is False
        assert report["entries_quarantined"] == 0
        assert entry.directory.exists()  # nothing was moved

    def test_scrub_removes_torn_checkpoints(self, tmp_path, manual_job_and_result):
        cache, job, _ = stored(tmp_path, manual_job_and_result)
        key = job.content_hash
        assert cache.write_checkpoint(key, tiny_checkpoint())
        path = cache.checkpoint_path(key)
        path.write_bytes(path.read_bytes()[:20])  # torn mid-write
        report = cache.scrub()
        assert report["checkpoints_corrupt"] == 1
        assert report["checkpoints_removed"] == 1
        assert not path.exists()

    def test_scrub_error_containment(self, tmp_path, manual_job_and_result):
        cache, _, _ = stored(tmp_path, manual_job_and_result)
        FAULTS.install([FaultSpec("cache.scrub", action="raise")])
        report = cache.scrub()
        assert report["errors"] == 1
        assert report["clean"] is False


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        assert not cache.has_checkpoint(key)
        assert cache.write_checkpoint(key, tiny_checkpoint("phase2"))
        assert cache.has_checkpoint(key)
        loaded = cache.read_checkpoint(key)
        assert loaded is not None
        assert loaded.stage == "phase2"
        assert loaded.elapsed_s == pytest.approx(0.25)
        assert cache.stats.checkpoint_writes == 1
        assert cache.stats.checkpoint_hits == 1

    def test_torn_checkpoint_degrades_to_cold(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        assert cache.write_checkpoint(key, tiny_checkpoint())
        path = cache.checkpoint_path(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.read_checkpoint(key) is None
        assert cache.stats.checkpoint_corrupt == 1
        assert not path.exists()  # cleaned up so the next probe is O(1)

    def test_tampered_digest_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        assert cache.write_checkpoint(key, tiny_checkpoint())
        path = cache.checkpoint_path(key)
        doc = json.loads(path.read_text())
        doc["elapsed_s"] = 9999.0  # tamper without re-signing
        path.write_text(json.dumps(doc))
        assert cache.read_checkpoint(key) is None
        assert cache.stats.checkpoint_corrupt == 1

    def test_wrong_content_hash_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, other = "12" * 32, "34" * 32
        assert cache.write_checkpoint(key, tiny_checkpoint())
        os.makedirs(cache.checkpoint_dir(other), exist_ok=True)
        cache.checkpoint_path(other).write_bytes(
            cache.checkpoint_path(key).read_bytes()
        )
        assert cache.read_checkpoint(other) is None  # a foreign job's state

    def test_write_fault_is_contained(self, tmp_path):
        cache = ResultCache(tmp_path)
        FAULTS.install(
            [FaultSpec("checkpoint.write", action="raise", errno_name="ENOSPC")]
        )
        assert cache.write_checkpoint("56" * 32, tiny_checkpoint()) is False
        assert cache.stats.checkpoint_write_errors == 1
        assert cache.last_put_error is not None

    def test_injected_read_corruption_degrades_to_cold(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "78" * 32
        assert cache.write_checkpoint(key, tiny_checkpoint())
        FAULTS.install([FaultSpec("checkpoint.read.corrupt", action="custom")])
        assert cache.read_checkpoint(key) is None
        assert cache.stats.checkpoint_corrupt == 1

    def test_clear_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "9a" * 32
        assert cache.write_checkpoint(key, tiny_checkpoint())
        cache.clear_checkpoint(key)
        assert not cache.has_checkpoint(key)
        cache.clear_checkpoint(key)  # idempotent

    def test_checkpointer_binds_cache_and_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        sink = SolveCheckpointer(cache, "bc" * 32)
        assert sink.load() is None
        assert sink.save(tiny_checkpoint("phase2"))
        assert sink.load().stage == "phase2"
        sink.clear()
        assert sink.load() is None


class TestStagingSweepGrace:
    def test_sweep_spares_a_live_writers_staging_dir(self, tmp_path):
        """A slow writer's staging dir must survive a concurrent sweep.

        The directory inode's mtime freezes once its files exist, so a
        writer still streaming *contents* into those files looks old by
        directory mtime alone.  The sweep must judge age by the newest
        mtime inside the dir, or it deletes in-flight work (the two-writer
        race this test pins down).
        """
        cache = ResultCache(tmp_path)
        staging = tmp_path / "tmp" / "deadbeef0000-123-abcd1234"
        staging.mkdir(parents=True)
        artifact = staging / LAYOUT_FILE
        artifact.write_text("{}")
        ancient = time.time() - 2 * STALE_STAGING_SECONDS
        os.utime(staging, (ancient, ancient))  # dir looks abandoned...
        # ...but a file inside was written moments ago: writer is alive.
        assert cache._sweep_stale_staging() == 0
        assert staging.is_dir()

    def test_sweep_removes_genuinely_abandoned_staging(self, tmp_path):
        cache = ResultCache(tmp_path)
        staging = tmp_path / "tmp" / "deadbeef0000-124-abcd1234"
        staging.mkdir(parents=True)
        artifact = staging / LAYOUT_FILE
        artifact.write_text("{}")
        ancient = time.time() - 2 * STALE_STAGING_SECONDS
        os.utime(staging, (ancient, ancient))
        os.utime(artifact, (ancient, ancient))
        assert cache._sweep_stale_staging() == 1
        assert not staging.exists()

    def test_two_writers_one_stalled_one_completing(
        self, tmp_path, manual_job_and_result
    ):
        """A completing put sweeps abandoned peers but never live ones."""
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        live = tmp_path / "tmp" / "aaaaaaaaaaaa-1-11111111"
        live.mkdir(parents=True)
        (live / LAYOUT_FILE).write_text("{}")  # fresh: writer mid-stream
        dead = tmp_path / "tmp" / "bbbbbbbbbbbb-2-22222222"
        dead.mkdir(parents=True)
        (dead / LAYOUT_FILE).write_text("{}")
        ancient = time.time() - 2 * STALE_STAGING_SECONDS
        os.utime(dead, (ancient, ancient))
        os.utime(dead / LAYOUT_FILE, (ancient, ancient))
        assert cache.put(job, result) is not None  # put runs the sweep
        assert live.is_dir()
        assert not dead.exists()
