"""Job-hash canonicalisation: the correctness contract of the result cache."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.circuit.loader import netlist_from_dict, netlist_to_dict
from repro.circuits import get_circuit
from repro.core.config import PhaseSettings, PILPConfig
from repro.runner import GeneratorSpec, LayoutJob, canonical_netlist_dict
from tests.conftest import build_tiny_netlist


def job_for(netlist, flow="pilp", **kwargs):
    return LayoutJob(flow=flow, netlist=netlist, **kwargs)


class TestHashCanonicalisation:
    def test_hash_is_deterministic(self):
        netlist = build_tiny_netlist()
        assert job_for(netlist).content_hash == job_for(netlist).content_hash

    def test_json_round_trip_preserves_hash(self):
        netlist = build_tiny_netlist()
        round_tripped = netlist_from_dict(
            json.loads(json.dumps(netlist_to_dict(netlist)))
        )
        assert job_for(netlist).content_hash == job_for(round_tripped).content_hash

    def test_dict_key_reordering_preserves_hash(self):
        netlist = build_tiny_netlist()
        document = netlist_to_dict(netlist)
        reordered = dict(reversed(list(document.items())))
        reordered["devices"] = [
            dict(reversed(list(entry.items()))) for entry in reordered["devices"]
        ]
        assert (
            job_for(netlist).content_hash
            == job_for(netlist_from_dict(reordered)).content_hash
        )

    def test_element_order_is_content(self):
        """Flows consume elements in list order, so order stays in the hash.

        Hashing it away would serve one ordering's cached layout for the
        other ordering's (potentially different) run.
        """
        netlist = build_tiny_netlist()
        document = netlist_to_dict(netlist)
        document["devices"] = list(reversed(document["devices"]))
        shuffled = netlist_from_dict(document)
        assert job_for(netlist).content_hash != job_for(shuffled).content_hash

    def test_hash_matches_exactly_what_executes(self):
        """The hashed document and the executed netlist are the same object."""
        netlist = build_tiny_netlist()
        job = job_for(netlist)
        assert job.resolve_netlist() is netlist
        assert canonical_netlist_dict(netlist) == netlist_to_dict(netlist)

    @pytest.mark.parametrize(
        "knob",
        [
            {"time_limit": 33.0},
            {"mip_gap": 0.011},
            {"backend": "branch-and-bound"},
            {"warm_start": False},
            {"progressive": False},
        ],
    )
    def test_any_phase_settings_knob_changes_hash(self, knob):
        netlist = build_tiny_netlist()
        base = job_for(netlist)
        changed = job_for(
            netlist, config=PILPConfig().with_updates(phase2=PhaseSettings(**knob))
        )
        assert base.content_hash != changed.content_hash

    def test_netlist_content_changes_hash(self):
        reference = job_for(build_tiny_netlist())
        document = netlist_to_dict(build_tiny_netlist())
        document["microstrips"][0]["target_length"] += 1.0
        changed = job_for(netlist_from_dict(document))
        assert reference.content_hash != changed.content_hash

    def test_flow_and_tag_change_hash(self):
        netlist = build_tiny_netlist()
        assert (
            job_for(netlist, flow="pilp").content_hash
            != job_for(netlist, flow="exact").content_hash
        )
        assert (
            job_for(netlist).content_hash
            != job_for(netlist, tag="salted").content_hash
        )

    def test_manual_flow_ignores_config(self):
        netlist = build_tiny_netlist()
        default = job_for(netlist, flow="manual")
        fast = job_for(netlist, flow="manual", config=PILPConfig.fast())
        assert default.content_hash == fast.content_hash

    def test_label_and_variant_do_not_change_hash(self):
        netlist = build_tiny_netlist()
        assert (
            job_for(netlist).content_hash
            == job_for(netlist, label="x", variant="v").content_hash
        )


class TestGeneratorSpec:
    def test_generator_job_hashes_like_materialised_netlist(self):
        from_generator = LayoutJob(
            flow="manual", generator=GeneratorSpec("lna60", "reduced")
        )
        from_netlist = LayoutJob(
            flow="manual", netlist=get_circuit("lna60", "reduced").netlist
        )
        assert from_generator.content_hash == from_netlist.content_hash

    def test_generator_seed_changes_hash(self):
        seeded = LayoutJob(
            flow="manual", generator=GeneratorSpec("lna60", "reduced", seed=7)
        )
        unseeded = LayoutJob(flow="manual", generator=GeneratorSpec("lna60", "reduced"))
        assert seeded.content_hash != unseeded.content_hash

    def test_netlist_is_resolved_once(self):
        job = LayoutJob(flow="manual", generator=GeneratorSpec("lna60", "reduced"))
        assert job.resolve_netlist() is job.resolve_netlist()


class TestValidationAndHelpers:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            LayoutJob(flow="pilp")
        with pytest.raises(ConfigurationError):
            LayoutJob(
                flow="pilp",
                netlist=build_tiny_netlist(),
                generator=GeneratorSpec("lna60"),
            )

    def test_rejects_unknown_flow(self):
        with pytest.raises(ConfigurationError):
            LayoutJob(flow="magic", netlist=build_tiny_netlist())

    def test_describe_and_with_config(self):
        job = job_for(build_tiny_netlist())
        assert job.describe() == "tiny:pilp"
        variant = job.with_config(PILPConfig.fast(), variant="cold")
        assert variant.describe() == "tiny:pilp@cold"
        assert variant.content_hash != job.content_hash
        assert job_for(build_tiny_netlist(), label="my-label").describe() == "my-label"
