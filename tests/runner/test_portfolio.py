"""Portfolio racing: variant configs, winner selection, loser cancellation."""

import time

import pytest

from repro.ilp.backends import get_backend
from repro.core.config import PILPConfig
from repro.runner import (
    BatchRunner,
    LayoutJob,
    PortfolioVariant,
    default_variants,
    run_portfolio,
    run_portfolio_batch,
)
from tests.conftest import build_tiny_netlist
from tests.runner.test_pool import make_flow_result


class RiggedJob(LayoutJob):
    """Behaviour keyed on the portfolio variant name.

    ``*clean*`` variants return a DRC-clean result; ``*slow*`` variants
    hang (they must be cancelled for the test to finish quickly); anything
    else returns a valid but dirty result.
    """

    def run(self):
        if "slow" in self.variant:
            time.sleep(30.0)
        if "clean" in self.variant:
            return make_flow_result(clean=True)
        return make_flow_result(clean=False)


def rigged_job():
    return RiggedJob(flow="pilp", netlist=build_tiny_netlist())


def variants(*names):
    """Distinct-config variants (portfolio entries must hash differently)."""
    scales = (0.9, 0.8, 0.7, 0.6)
    return [
        PortfolioVariant(name, time_limit_scale=scales[index])
        for index, name in enumerate(names)
    ]


class TestVariantConfigs:
    def test_apply_rewrites_all_phases(self):
        variant = PortfolioVariant(
            "cold", phase_overrides={"warm_start": False, "progressive": False}
        )
        config = variant.apply(PILPConfig())
        for phase in (config.phase1, config.phase2, config.phase3, config.exact):
            assert phase.warm_start is False
            assert phase.progressive is False

    def test_apply_scales_time_limits(self):
        variant = PortfolioVariant("half", time_limit_scale=0.5)
        base = PILPConfig()
        config = variant.apply(base)
        assert config.phase1.time_limit == pytest.approx(base.phase1.time_limit * 0.5)

    def test_apply_config_overrides(self):
        variant = PortfolioVariant("short", config_overrides={"max_refinement_iterations": 1})
        assert variant.apply(PILPConfig()).max_refinement_iterations == 1

    def test_default_variants_use_real_backends(self):
        for variant in default_variants():
            config = variant.apply(PILPConfig())
            get_backend(config.phase1.backend)  # must not raise

    def test_default_variants_have_distinct_hashes(self):
        job = rigged_job()
        hashes = {
            job.with_config(variant.apply(job.config), variant=variant.name).content_hash
            for variant in default_variants()
        }
        assert len(hashes) == len(default_variants())


class TestRacing:
    def test_first_clean_wins_and_losers_are_cancelled(self):
        runner = BatchRunner(workers=2)
        started = time.perf_counter()
        race = run_portfolio(rigged_job(), runner, variants("clean-fast", "slow-hog"))
        assert time.perf_counter() - started < 15.0
        assert race.drc_clean
        assert race.winner_variant == "clean-fast"
        by_variant = {outcome.job.variant: outcome for outcome in race.outcomes}
        assert by_variant["slow-hog"].status == "cancelled"

    def test_clean_whenever_any_variant_finds_one(self):
        runner = BatchRunner(workers=2)
        race = run_portfolio(rigged_job(), runner, variants("dirty-a", "clean-late"))
        assert race.drc_clean
        assert race.winner_variant == "clean-late"

    def test_no_clean_result_picks_best_score(self):
        runner = BatchRunner(workers=2)
        race = run_portfolio(rigged_job(), runner, variants("dirty-a", "dirty-b"))
        assert race.winner is not None
        assert not race.drc_clean
        assert race.winner.ok

    def test_all_variants_failing_yields_no_winner(self):
        class DoomedJob(LayoutJob):
            def run(self):
                raise RuntimeError("nope")

        runner = BatchRunner(workers=2)
        job = DoomedJob(flow="pilp", netlist=build_tiny_netlist())
        race = run_portfolio(job, runner, variants("dirty-a", "dirty-b"))
        assert race.winner is None
        assert race.row()["status"] == "failed"

    def test_portfolio_batch_and_rows(self):
        runner = BatchRunner(workers=2)
        races = run_portfolio_batch(
            [rigged_job(), rigged_job()], runner, variants("clean-a", "dirty-b")
        )
        assert len(races) == 2
        for race in races:
            assert race.drc_clean
            row = race.row()
            assert row["variant"] == "clean-a"
            assert row["status"] in ("completed", "cached")

    def test_inline_racing_works(self):
        runner = BatchRunner(workers=0)
        race = run_portfolio(rigged_job(), runner, variants("clean-a", "dirty-b"))
        assert race.drc_clean
        assert race.winner_variant == "clean-a"
