"""Worker pool: parallelism, crash isolation, timeouts, dedup, cancellation.

The rigged job subclasses below override ``run()`` so no MILP solver is
involved; the pool only ever sees ``LayoutJob`` objects, which keeps these
tests fast while exercising the real scheduling machinery (fork, queues,
termination).
"""

import os
import time

import pytest

from repro.geometry import ManhattanPath, Point
from repro.layout import Layout, Placement, RoutedMicrostrip
from repro.layout.drc import DRCReport, run_drc
from repro.layout.metrics import compute_metrics
from repro.core.result import FlowResult
from repro.runner import BatchRunner, LayoutJob, ResultCache, WorkerPool
from tests.conftest import build_tiny_netlist


def make_flow_result(clean: bool = False) -> FlowResult:
    """A hand-built FlowResult on the tiny netlist (no solver involved)."""
    netlist = build_tiny_netlist()
    layout = Layout(netlist)
    layout.set_placement(Placement("P_IN", Point(30.0, 150.0)))
    layout.set_placement(Placement("P_OUT", Point(370.0, 150.0)))
    layout.set_placement(Placement("M1", Point(200.0, 150.0)))
    gate = layout.pin_position("M1", "G")
    drain = layout.pin_position("M1", "D")
    pad_in = layout.pin_position("P_IN", "SIG")
    pad_out = layout.pin_position("P_OUT", "SIG")
    layout.set_route(
        RoutedMicrostrip(
            "ms_in", ManhattanPath([pad_in, Point(gate.x, pad_in.y), gate], width=10.0)
        )
    )
    layout.set_route(
        RoutedMicrostrip(
            "ms_out",
            ManhattanPath([drain, Point(pad_out.x, drain.y), pad_out], width=10.0),
        )
    )
    return FlowResult(
        flow="rigged",
        circuit=netlist.name,
        layout=layout,
        metrics=compute_metrics(layout),
        drc=DRCReport(violations=[]) if clean else run_drc(layout),
        runtime=0.01,
    )


class QuickJob(LayoutJob):
    """Returns a hand-built result immediately."""

    def run(self):
        return make_flow_result()


class CleanJob(LayoutJob):
    """Returns a DRC-clean result immediately."""

    def run(self):
        return make_flow_result(clean=True)


class FailingJob(LayoutJob):
    """Raises inside the worker (exception isolation)."""

    def run(self):
        raise ValueError("rigged failure")


class CrashingJob(LayoutJob):
    """Dies without reporting (hard-crash isolation)."""

    def run(self):
        os._exit(17)


class SleepyJob(LayoutJob):
    """Outlives any reasonable per-job timeout."""

    def run(self):
        time.sleep(30.0)
        return make_flow_result()


def quick(tag, cls=QuickJob):
    return cls(flow="manual", netlist=build_tiny_netlist(), tag=tag)


class TestPoolExecution:
    def test_parallel_batch_preserves_input_order(self):
        jobs = [quick(f"j{i}") for i in range(4)]
        outcomes = WorkerPool(workers=2).run(jobs)
        assert [o.status for o in outcomes] == ["completed"] * 4
        assert [o.job.tag for o in outcomes] == ["j0", "j1", "j2", "j3"]
        assert all(o.summary["circuit"] == "tiny" for o in outcomes)

    def test_flow_result_without_cache_uses_layout_doc(self):
        outcome = WorkerPool(workers=1).run([quick("doc")])[0]
        assert outcome.layout_doc is not None
        rebuilt = outcome.flow_result()
        assert rebuilt.circuit == "tiny"
        assert (
            rebuilt.metrics.total_bend_count
            == make_flow_result().metrics.total_bend_count
        )

    def test_exception_is_isolated(self):
        jobs = [quick("a"), quick("b", FailingJob), quick("c")]
        outcomes = WorkerPool(workers=2).run(jobs)
        assert [o.status for o in outcomes] == ["completed", "failed", "completed"]
        assert "rigged failure" in outcomes[1].error
        with pytest.raises(RuntimeError):
            outcomes[1].flow_result()

    def test_crash_is_isolated(self):
        jobs = [quick("a"), quick("b", CrashingJob)]
        outcomes = WorkerPool(workers=2).run(jobs)
        assert outcomes[0].status == "completed"
        assert outcomes[1].status == "failed"
        assert "crashed" in outcomes[1].error
        assert "17" in outcomes[1].error

    def test_timeout_terminates_job(self):
        jobs = [quick("slow", SleepyJob), quick("fast")]
        started = time.perf_counter()
        outcomes = WorkerPool(workers=2, job_timeout=1.0).run(jobs)
        elapsed = time.perf_counter() - started
        assert outcomes[0].status == "timeout"
        assert outcomes[1].status == "completed"
        assert elapsed < 15.0

    def test_identical_jobs_run_once(self, tmp_path):
        events = []
        cache = ResultCache(tmp_path)
        pool = WorkerPool(workers=2, cache=cache, progress=events.append)
        job_a = quick("same")
        job_b = quick("same")
        assert job_a.content_hash == job_b.content_hash
        outcomes = pool.run([job_a, job_b])
        assert [o.status for o in outcomes] == ["completed", "completed"]
        assert sum(1 for e in events if e.kind == "started") == 1
        assert outcomes[1].summary == outcomes[0].summary

    def test_stop_when_cancels_remaining(self):
        jobs = [quick("first"), quick("hang", SleepyJob), quick("never")]
        outcomes = WorkerPool(workers=1).run(
            jobs, stop_when=lambda outcome: outcome.ok
        )
        assert outcomes[0].status == "completed"
        assert {outcomes[1].status, outcomes[2].status} == {"cancelled"}


class TestCacheIntegration:
    def test_workers_populate_and_hit_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = quick("cacheme")
        first = WorkerPool(workers=1, cache=cache).run([job])[0]
        assert first.status == "completed"
        assert first.entry is not None
        second = WorkerPool(workers=1, cache=cache).run([job])[0]
        assert second.status == "cached"
        assert (
            second.flow_result().metrics.total_bend_count
            == make_flow_result().metrics.total_bend_count
        )

    def test_inline_mode_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        pool = WorkerPool(workers=0, cache=cache)
        assert pool.run([quick("inline")])[0].status == "completed"
        assert pool.run([quick("inline")])[0].status == "cached"
        assert cache.stats.hits == 1

    def test_inline_mode_isolates_exceptions(self):
        outcomes = WorkerPool(workers=0).run([quick("x", FailingJob), quick("y")])
        assert [o.status for o in outcomes] == ["failed", "completed"]


class TestProgressEvents:
    def test_event_sequence(self):
        events = []
        WorkerPool(workers=1, progress=events.append).run([quick("events")])
        kinds = [event.kind for event in events]
        assert kinds == ["submitted", "started", "completed"]
        assert events[-1].label == "tiny:manual"
        assert str(events[-1]).startswith("tiny:manual")

    def test_per_call_progress_on_run_one(self):
        """run_one emits the same lifecycle stream a batch emits (the layout
        service's SSE feed subscribes per dispatched job this way)."""
        events = []
        outcome = BatchRunner(workers=0).run_one(quick("single"), progress=events.append)
        assert outcome.status == "completed"
        assert [event.kind for event in events] == ["submitted", "completed"]

    def test_per_call_progress_augments_pool_progress(self):
        pool_events, call_events = [], []
        runner = BatchRunner(workers=0, progress=pool_events.append)
        runner.run_one(quick("both"), progress=call_events.append)
        assert [e.kind for e in pool_events] == [e.kind for e in call_events]
        assert len(call_events) == 2

    def test_cached_outcome_reaches_per_call_progress(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path, workers=0)
        runner.run_one(quick("cachedprog"))
        events = []
        outcome = runner.run_one(quick("cachedprog"), progress=events.append)
        assert outcome.status == "cached"
        assert [event.kind for event in events] == ["submitted", "cached"]


class TestBatchRunner:
    def test_facade_round_trip(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path, workers=1)
        outcome = runner.run_one(quick("facade"))
        assert outcome.status == "completed"
        assert runner.run_one(quick("facade")).status == "cached"
        stats = runner.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_no_cache_configured(self):
        runner = BatchRunner(workers=0)
        assert runner.cache is None
        assert runner.cache_stats() == {}
        assert runner.run_one(quick("nocache")).ok

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1)
