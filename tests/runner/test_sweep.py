"""Scenario sweeps: feasible specs, grid expansion, seed determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.circuit.netlist import LayoutArea
from repro.circuits.generator import build_amplifier_circuit
from repro.core.config import PILPConfig
from repro.runner import SweepSpec, amplifier_spec_for, generate_sweep, scenario_name


class TestAmplifierSpecFor:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_counts_are_feasible_and_exact(self, stages):
        spec = amplifier_spec_for(stages, 60.0, LayoutArea(900.0, 500.0))
        circuit = build_amplifier_circuit(spec)
        assert circuit.netlist.num_devices == spec.num_devices
        assert circuit.netlist.num_microstrips == spec.num_microstrips
        assert circuit.spec.num_stages == stages

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            amplifier_spec_for(0, 60.0, LayoutArea(600.0, 400.0))
        with pytest.raises(ConfigurationError):
            amplifier_spec_for(2, 60.0, LayoutArea(600.0, 400.0), extra_branches=-1)

    def test_scenario_name_encodes_parameters(self):
        name = scenario_name(2, 94.0, LayoutArea(620.0, 430.0), seed=7)
        assert name == "amp2s_94g_620x430_s7"
        assert scenario_name(1, 60.0, LayoutArea(620.0, 430.0)) == "amp1s_60g_620x430"


class TestSweepSpec:
    def test_grid_size(self):
        spec = SweepSpec(
            frequencies_ghz=(57.0, 60.0, 64.0),
            stage_counts=(1, 2),
            area_scales=(1.0, 0.9),
            seeds=(None, 1),
        )
        assert len(spec) == 24
        assert len(list(spec.specs())) == 24

    def test_empty_grid_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(frequencies_ghz=())

    def test_area_scales_with_stage_count(self):
        spec = SweepSpec()
        assert spec.area_for(3, 1.0).width > spec.area_for(2, 1.0).width
        assert spec.area_for(2, 0.8).height < spec.area_for(2, 1.0).height


class TestGenerateSweep:
    def test_jobs_are_distinct_and_labelled(self):
        jobs = generate_sweep(
            SweepSpec(frequencies_ghz=(60.0, 94.0), seeds=(1, 2)),
            config=PILPConfig.fast(),
        )
        assert len(jobs) == 4
        assert len({job.content_hash for job in jobs}) == 4
        assert all(job.label.endswith(":pilp") for job in jobs)
        assert all(job.flow == "pilp" for job in jobs)

    def test_seed_jitter_is_deterministic(self):
        make = lambda seed: generate_sweep(
            SweepSpec(seeds=(seed,)), config=PILPConfig.fast()
        )[0]
        assert make(3).content_hash == make(3).content_hash
        assert make(3).content_hash != make(4).content_hash

    def test_seeded_lengths_differ_but_counts_match(self):
        unseeded, seeded = (
            generate_sweep(SweepSpec(seeds=(seed,)), config=PILPConfig.fast())[0]
            for seed in (None, 11)
        )
        base = unseeded.resolve_netlist()
        jittered = seeded.resolve_netlist()
        assert base.num_microstrips == jittered.num_microstrips
        assert base.num_devices == jittered.num_devices
        base_lengths = [net.target_length for net in base.microstrips]
        jittered_lengths = [net.target_length for net in jittered.microstrips]
        assert base_lengths != jittered_lengths

    def test_flow_override(self):
        jobs = generate_sweep(SweepSpec(), flow="manual")
        assert jobs[0].flow == "manual"
