"""The content-addressed result cache: round-trips, stats, append-only."""

import json

import pytest

from repro.runner import LayoutJob, ResultCache
from tests.conftest import build_tiny_netlist


@pytest.fixture(scope="module")
def manual_job_and_result():
    job = LayoutJob(flow="manual", netlist=build_tiny_netlist())
    return job, job.run()


class TestPutGet:
    def test_round_trip(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(job) is None
        entry = cache.put(job, result)
        assert entry.directory.is_dir()
        assert cache.contains(job)

        hit = cache.get(job)
        assert hit is not None
        assert hit.key == job.content_hash
        assert hit.summary["total_bends"] == result.metrics.total_bend_count
        assert hit.manifest["flow"] == "manual-like"
        assert hit.manifest["circuit"] == "tiny"

    def test_flow_result_reconstruction(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        rebuilt = cache.get(job).flow_result()
        assert rebuilt.circuit == result.circuit
        assert rebuilt.metrics.total_bend_count == result.metrics.total_bend_count
        assert rebuilt.metrics.max_bend_count == result.metrics.max_bend_count
        assert rebuilt.drc.count() == result.drc.count()
        assert rebuilt.runtime == pytest.approx(result.runtime, abs=0.01)

    def test_entry_is_sharded_by_hash_prefix(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        entry = cache.put(job, result)
        key = job.content_hash
        assert entry.directory == tmp_path / key[:2] / key[2:]


class TestStats:
    def test_hit_miss_counters(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        cache.get(job)
        cache.put(job, result)
        cache.get(job)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_does_not_count(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        assert cache.peek(job) is None
        cache.put(job, result)
        assert cache.peek(job) is not None
        assert cache.stats.lookups == 0


class TestAppendOnly:
    def test_second_put_keeps_first_entry(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        first = cache.put(job, result)
        created = first.manifest["created_unix"]
        second = cache.put(job, result)
        assert second.manifest["created_unix"] == created
        assert cache.stats.stores == 1

    def test_no_staging_leftovers(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        staging = tmp_path / "tmp"
        assert not staging.exists() or not any(staging.iterdir())

    def test_stale_staging_dirs_are_swept(self, tmp_path, manual_job_and_result):
        import os

        job, result = manual_job_and_result
        orphan = tmp_path / "tmp" / "deadbeef-123-killed"
        orphan.mkdir(parents=True)
        (orphan / "layout.json").write_text("{}", encoding="utf-8")
        ancient = 1_000_000.0
        # Age the contents too: the sweep treats the newest mtime anywhere
        # in the dir as the writer's heartbeat, so a dir counts as orphaned
        # only when *everything* in it has gone quiet.
        os.utime(orphan / "layout.json", (ancient, ancient))
        os.utime(orphan, (ancient, ancient))
        fresh = tmp_path / "tmp" / "cafebabe-456-alive"
        fresh.mkdir(parents=True)

        ResultCache(tmp_path).put(job, result)
        assert not orphan.exists()
        assert fresh.exists()


class TestRobustness:
    def test_incomplete_entry_is_a_miss(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        entry = cache.put(job, result)
        (entry.directory / "metrics.json").unlink()
        assert cache.get(job) is None
        assert not cache.contains(job)

    def test_corrupt_manifest_is_a_miss(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        entry = cache.put(job, result)
        (entry.directory / "manifest.json").write_text("{not json", encoding="utf-8")
        assert cache.get(job) is None

    def test_put_self_heals_corrupt_entry(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        entry = cache.put(job, result)
        (entry.directory / "metrics.json").write_text("{truncated", encoding="utf-8")
        healed = cache.put(job, result)
        assert healed.summary["total_bends"] == result.metrics.total_bend_count
        assert cache.get(job) is not None

    def test_put_self_heals_partial_entry(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        entry = cache.put(job, result)
        (entry.directory / "layout.json").unlink()
        healed = cache.put(job, result)
        assert healed.layout_path.is_file()
        assert cache.get(job).flow_result().circuit == result.circuit

    def test_empty_cache_is_falsy_but_usable(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        cache = ResultCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert list(cache.iter_entries()) == []
        assert cache.get(job) is None


class TestPutFailureContainment:
    """Disk failures during a store are contained, not propagated."""

    @pytest.fixture(autouse=True)
    def _clear_faults(self):
        from repro.faults import FAULTS

        yield
        FAULTS.clear()

    def test_enospc_on_staging_is_contained(self, tmp_path, manual_job_and_result):
        from repro.faults import FAULTS, FaultSpec

        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        FAULTS.install([FaultSpec(point="cache.put.staging", errno_name="ENOSPC")])
        entry = cache.put(job, result)
        assert entry is None
        assert cache.stats.put_errors == 1
        assert "ENOSPC" in cache.last_put_error or "No space" in cache.last_put_error
        assert not cache.contains(job)

    def test_eio_on_rename_is_contained(self, tmp_path, manual_job_and_result):
        from repro.faults import FAULTS, FaultSpec

        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        FAULTS.install([FaultSpec(point="cache.put.rename", errno_name="EIO")])
        assert cache.put(job, result) is None
        assert cache.stats.put_errors == 1
        # No staging garbage survives the failed store.
        staging = tmp_path / "tmp"
        assert not staging.exists() or not any(staging.iterdir())

    def test_next_put_recovers_and_clears_flag(self, tmp_path, manual_job_and_result):
        from repro.faults import FAULTS, FaultSpec

        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        FAULTS.install(
            [FaultSpec(point="cache.put.staging", errno_name="ENOSPC", times=1)]
        )
        assert cache.put(job, result) is None
        assert cache.last_put_error is not None
        entry = cache.put(job, result)  # the fault window has passed
        assert entry is not None
        assert cache.last_put_error is None
        assert cache.stats.put_errors == 1

    def test_injected_corruption_counts_as_put_error(
        self, tmp_path, manual_job_and_result
    ):
        from repro.faults import FAULTS, FaultSpec

        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        FAULTS.install([FaultSpec(point="cache.put.corrupt", action="custom")])
        assert cache.put(job, result) is None
        assert cache.stats.put_errors == 1
        FAULTS.clear()
        # The corrupt entry is a miss, and the next put self-heals it.
        assert cache.get(job) is None
        assert cache.put(job, result) is not None
        assert cache.get(job) is not None

    def test_append_only_still_wins_over_faults(self, tmp_path, manual_job_and_result):
        from repro.faults import FAULTS, FaultSpec

        job, result = manual_job_and_result
        cache = ResultCache(tmp_path)
        first = cache.put(job, result)
        assert first is not None
        FAULTS.install([FaultSpec(point="cache.put.staging", errno_name="ENOSPC")])
        # A valid entry exists, so put never reaches the staging write.
        again = cache.put(job, result)
        assert again is not None
        assert cache.stats.put_errors == 0


class TestIteration:
    def test_iter_entries_lists_all(self, tmp_path, manual_job_and_result):
        job, result = manual_job_and_result
        salted = LayoutJob(flow="manual", netlist=build_tiny_netlist(), tag="other")
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        cache.put(salted, result)
        entries = list(cache.iter_entries())
        assert len(entries) == len(cache) == 2
        assert {entry.key for entry in entries} == {
            job.content_hash,
            salted.content_hash,
        }
        for entry in entries:
            document = json.loads(entry.layout_path.read_text())
            assert document["circuit"] == "tiny"
