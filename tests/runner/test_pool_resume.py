"""Worker-pool checkpoint resume: crashed solves continue, never restart.

These tests run real (tiny) P-ILP solves through the pool, because the
thing under test is the full path: worker writes per-phase checkpoints
through the cache, dies, and the *next* worker for the same content hash
picks the solve up at the first unfinished phase — settling bit-identical
to an uninterrupted run.
"""

import json

import pytest

from repro.faults import FAULTS, FaultSpec
from repro.layout.export_json import load_layout, layout_to_dict
from repro.runner import LayoutJob, ResultCache, WorkerPool
from tests.conftest import build_tiny_netlist

pytestmark = pytest.mark.slow  # full (tiny) P-ILP solves


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.clear()
    yield FAULTS
    FAULTS.clear()


def pilp_job(tag=""):
    return LayoutJob(flow="pilp", netlist=build_tiny_netlist(), tag=tag)


def normalized_doc(layout) -> str:
    doc = layout_to_dict(layout)
    doc.get("metadata", {}).pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


class TestForkResume:
    def test_crashed_worker_resumes_and_settles_identically(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = pilp_job("fork-resume")
        # Kill the worker at the second checkpoint write: phase1's
        # checkpoint lands, the worker dies before phase2's does.  The
        # state_dir makes the call counter global across forks, so the
        # retry's worker counts onward and is not killed again.
        FAULTS.install(
            [FaultSpec("checkpoint.write", action="crash", after=1, times=1)],
            state_dir=tmp_path / "faults",
        )
        first = WorkerPool(workers=1, cache=cache).run([job])[0]
        assert first.status == "failed"
        assert "worker crashed" in first.error
        assert cache.has_checkpoint(job.content_hash)
        assert cache.peek_checkpoint_stage(job.content_hash) == "phase1"

        events = []
        second = WorkerPool(workers=1, cache=cache).run(
            [job], progress=events.append
        )[0]
        assert second.status == "completed"
        profile = second.profile or {}
        assert profile["resumed_from_phase"] == "phase1"
        assert profile["checkpoint_writes"] >= 1
        assert ("resumed", "phase1") in [(e.kind, e.detail) for e in events]
        # Settled entry must clear the partial state: nothing to resume.
        assert not cache.has_checkpoint(job.content_hash)

        # Bit-identical to a cold solve of the same job in a fresh cache.
        cold = WorkerPool(workers=1, cache=ResultCache(tmp_path / "cold")).run(
            [job]
        )[0]
        resumed_layout = load_layout(second.entry.layout_path)
        cold_layout = load_layout(cold.entry.layout_path)
        assert normalized_doc(resumed_layout) == normalized_doc(cold_layout)

    def test_torn_checkpoint_falls_back_to_cold_solve(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = pilp_job("torn")
        # Plant a torn checkpoint where the worker will look for one.
        path = cache.checkpoint_path(job.content_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"schema": 1, "stage": "phase1", "compl')
        outcome = WorkerPool(workers=0, cache=cache).run([job])[0]
        assert outcome.status == "completed"
        # Never resumed: the torn state was discarded, the solve ran cold.
        assert not (outcome.profile or {}).get("resumed_from_phase")
        assert cache.stats.checkpoint_corrupt == 1
        assert not path.exists()


class TestInlineResume:
    def test_inline_pool_resumes_from_planted_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = pilp_job("inline-resume")
        # First run, interrupted after phase1 via a contained raise on the
        # second checkpoint write... simpler: run cold once in a scratch
        # cache to harvest a real phase1 checkpoint document.
        FAULTS.install(
            [
                FaultSpec(
                    "worker.run", action="raise", message="interrupt", after=0,
                    times=1,
                )
            ]
        )
        interrupted = WorkerPool(workers=0, cache=cache).run([job])[0]
        assert interrupted.status == "failed"
        FAULTS.clear()
        # The inline worker never started (fault fired pre-run): no
        # checkpoint exists, so this documents the cold path too.
        assert not cache.has_checkpoint(job.content_hash)
        outcome = WorkerPool(workers=0, cache=cache).run([job])[0]
        assert outcome.status == "completed"
        assert not (outcome.profile or {}).get("resumed_from_phase")

    def test_checkpoint_write_failure_never_fails_the_solve(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = pilp_job("enospc")
        # Every checkpoint write hits ENOSPC; the solve must still finish.
        FAULTS.install(
            [
                FaultSpec(
                    "checkpoint.write", action="raise", errno_name="ENOSPC",
                    times=0,
                )
            ]
        )
        outcome = WorkerPool(workers=0, cache=cache).run([job])[0]
        assert outcome.status == "completed"
        assert (outcome.profile or {}).get("checkpoint_writes", 0) == 0
        assert cache.stats.checkpoint_write_errors >= 1
