"""Unit tests for linear expressions, variables and constraints."""

import math

import pytest

from repro.errors import ModelError
from repro.ilp import LinExpr, Model, Sense, VarType, quicksum
from repro.ilp.expr import Constraint


@pytest.fixture
def model():
    return Model("expr-tests")


class TestVariable:
    def test_binary_bounds_clamped(self, model):
        var = model.add_binary("b")
        assert var.lb == 0.0
        assert var.ub == 1.0
        assert var.is_binary
        assert var.is_integer

    def test_continuous_defaults(self, model):
        var = model.add_continuous("x")
        assert var.lb == 0.0
        assert math.isinf(var.ub)
        assert not var.is_integer

    def test_integer_variable(self, model):
        var = model.add_integer("n", lb=1, ub=7)
        assert var.vartype is VarType.INTEGER
        assert var.is_integer and not var.is_binary

    def test_invalid_bounds_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_continuous("bad", lb=3.0, ub=1.0)

    def test_nan_bounds_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_continuous("bad", lb=float("nan"))

    def test_duplicate_name_rejected(self, model):
        model.add_continuous("x")
        with pytest.raises(ModelError):
            model.add_continuous("x")

    def test_auto_generated_names_unique(self, model):
        first = model.add_continuous()
        second = model.add_continuous()
        assert first.name != second.name

    def test_not_equal_is_rejected(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            _ = x != 3


class TestLinExprArithmetic:
    def test_addition_of_variables(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        expr = x + y
        assert expr.coeffs[x] == 1.0
        assert expr.coeffs[y] == 1.0
        assert expr.constant == 0.0

    def test_scalar_multiplication(self, model):
        x = model.add_continuous("x")
        expr = 3 * x + 2
        assert expr.coeffs[x] == 3.0
        assert expr.constant == 2.0

    def test_subtraction_and_negation(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        expr = -(x - 2 * y) + 1
        assert expr.coeffs[x] == -1.0
        assert expr.coeffs[y] == 2.0
        assert expr.constant == 1.0

    def test_rsub_with_constant(self, model):
        x = model.add_continuous("x")
        expr = 10 - x
        assert expr.coeffs[x] == -1.0
        assert expr.constant == 10.0

    def test_division_by_scalar(self, model):
        x = model.add_continuous("x")
        expr = (4 * x + 2) / 2
        assert expr.coeffs[x] == 2.0
        assert expr.constant == 1.0

    def test_division_by_zero_raises(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ZeroDivisionError):
            _ = x.to_expr() / 0

    def test_product_of_expressions_rejected(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        with pytest.raises(ModelError):
            _ = x.to_expr() * y.to_expr()

    def test_near_zero_coefficients_dropped(self, model):
        x = model.add_continuous("x")
        expr = x - x
        assert expr.coeffs == {}

    def test_quicksum(self, model):
        xs = [model.add_continuous(f"x{i}") for i in range(5)]
        expr = quicksum(xs)
        assert len(expr.coeffs) == 5
        assert all(coeff == 1.0 for coeff in expr.coeffs.values())

    def test_sum_with_constants(self, model):
        x = model.add_continuous("x")
        expr = LinExpr.sum([x, 2, 3.5])
        assert expr.constant == 5.5

    def test_evaluation(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        expr = 2 * x - y + 4
        assert expr.value({x: 3.0, y: 1.0}) == pytest.approx(9.0)

    def test_from_value_rejects_garbage(self):
        with pytest.raises(ModelError):
            LinExpr.from_value("not an expression")


class TestConstraints:
    def test_le_constraint_sense(self, model):
        x = model.add_continuous("x")
        constraint = x + 1 <= 5
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE

    def test_ge_constraint_sense(self, model):
        x = model.add_continuous("x")
        constraint = x >= 2
        assert constraint.sense is Sense.GE

    def test_eq_constraint_sense(self, model):
        x = model.add_continuous("x")
        constraint = x.to_expr() == 3
        assert constraint.sense is Sense.EQ

    def test_rhs_folded_into_constant(self, model):
        x = model.add_continuous("x")
        constraint = 2 * x <= 8
        assert constraint.expr.constant == -8.0

    def test_satisfaction_check(self, model):
        x = model.add_continuous("x")
        constraint = 2 * x <= 8
        assert constraint.is_satisfied({x: 4.0})
        assert constraint.is_satisfied({x: 3.9})
        assert not constraint.is_satisfied({x: 4.1})

    def test_violation_amount(self, model):
        x = model.add_continuous("x")
        constraint = x >= 5
        assert constraint.violation({x: 3.0}) == pytest.approx(2.0)
        assert constraint.violation({x: 6.0}) == 0.0

    def test_equality_violation_is_absolute(self, model):
        x = model.add_continuous("x")
        constraint = x.to_expr() == 2
        assert constraint.violation({x: 5.0}) == pytest.approx(3.0)
        assert constraint.violation({x: -1.0}) == pytest.approx(3.0)

    def test_with_name(self, model):
        x = model.add_continuous("x")
        constraint = (x <= 1).with_name("cap")
        assert constraint.name == "cap"
