"""Tests of the batched compile fast path and the incremental standard form.

The crucial invariant: a model built through :class:`ConstraintBatch` /
:meth:`Model.add_linear_batch` must export a :class:`StandardForm` that is
*identical* (same nnz, rows, right-hand sides, bounds and objective) to the
same model built constraint-by-constraint through the expression API, and a
form exported incrementally (compile, append, re-compile) must equal the
form of a from-scratch build.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ilp import ConstraintBatch, Model, Sense, lin_sum
from repro.ilp.expr import LinExpr


def _assert_forms_equal(first, second):
    assert first.num_variables == second.num_variables
    assert [v.name for v in first.variables] == [v.name for v in second.variables]
    np.testing.assert_array_equal(first.objective, second.objective)
    assert first.objective_constant == second.objective_constant
    np.testing.assert_array_equal(first.lower, second.lower)
    np.testing.assert_array_equal(first.upper, second.upper)
    np.testing.assert_array_equal(first.integrality, second.integrality)
    for attr in ("a_ub", "a_eq"):
        a = getattr(first, attr).tocsr().sorted_indices()
        b = getattr(second, attr).tocsr().sorted_indices()
        assert a.shape == b.shape
        assert a.nnz == b.nnz
        np.testing.assert_allclose(a.toarray(), b.toarray())
    np.testing.assert_allclose(first.b_ub, second.b_ub)
    np.testing.assert_allclose(first.b_eq, second.b_eq)
    assert first.maximize == second.maximize


# --------------------------------------------------------------------------- #
# random-model property test: batched path == legacy dict path
# --------------------------------------------------------------------------- #

coeffs = st.floats(-10.0, 10.0, allow_nan=False, width=32)
rhs_values = st.floats(-50.0, 50.0, allow_nan=False, width=32)
senses = st.sampled_from([Sense.LE, Sense.GE, Sense.EQ])

row_strategy = st.tuples(
    senses,
    st.lists(st.tuples(st.integers(0, 7), coeffs), min_size=1, max_size=6),
    rhs_values,
)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_strategy, min_size=1, max_size=12))
def test_batched_and_legacy_paths_produce_identical_forms(rows):
    def make_vars(model):
        variables = []
        for index in range(8):
            if index % 3 == 0:
                variables.append(model.add_binary(f"b{index}"))
            elif index % 3 == 1:
                variables.append(model.add_integer(f"i{index}", lb=-4, ub=9))
            else:
                variables.append(model.add_continuous(f"x{index}", lb=-2.5, ub=7.5))
        return variables

    legacy = Model("legacy")
    legacy_vars = make_vars(legacy)
    batched = Model("batched")
    batched_vars = make_vars(batched)

    batch = ConstraintBatch()
    for sense, terms, rhs in rows:
        legacy_expr = lin_sum(
            coeff * legacy_vars[var_index] for var_index, coeff in terms
        )
        if sense is Sense.LE:
            legacy.add_constraint(legacy_expr <= rhs)
            batch.add_le(rhs, [(batched_vars[i], c) for i, c in terms])
        elif sense is Sense.GE:
            legacy.add_constraint(legacy_expr >= rhs)
            batch.add_ge(rhs, [(batched_vars[i], c) for i, c in terms])
        else:
            legacy.add_constraint(legacy_expr == rhs)
            batch.add_eq(rhs, [(batched_vars[i], c) for i, c in terms])
    batched.add_linear_batch(batch)

    objective_terms = [(0, 1.5), (2, -2.0), (5, 0.25)]
    legacy.set_objective(
        lin_sum(c * legacy_vars[i] for i, c in objective_terms) + 3.0
    )
    batched.set_objective(
        lin_sum(c * batched_vars[i] for i, c in objective_terms) + 3.0
    )

    _assert_forms_equal(legacy.to_standard_form(), batched.to_standard_form())


# --------------------------------------------------------------------------- #
# incremental recompilation
# --------------------------------------------------------------------------- #


def _build_incrementally(export_midway: bool) -> "Model":
    model = Model("incremental")
    x = model.add_continuous("x", lb=0, ub=10)
    y = model.add_integer("y", lb=0, ub=5)
    model.add_constraint(x + 2 * y <= 8, name="first")
    model.set_objective(x + y, sense="max")
    if export_midway:
        model.to_standard_form()  # prime the cache
    b = model.add_binary("b")
    batch = ConstraintBatch()
    batch.add_ge(1.0, [(x, 1.0), (b, 3.0)], name="second")
    batch.add_eq(2.0, [(y, 1.0), (b, -1.0)], name="third")
    model.add_linear_batch(batch)
    model.add_constraint(x - y >= -4, name="fourth")
    return model


def test_incremental_export_matches_full_rebuild():
    incremental = _build_incrementally(export_midway=True)
    fresh = _build_incrementally(export_midway=False)
    _assert_forms_equal(incremental.to_standard_form(), fresh.to_standard_form())


def test_unchanged_model_reuses_cached_form():
    model = _build_incrementally(export_midway=True)
    first = model.to_standard_form()
    assert model.to_standard_form() is first


def test_objective_change_refreshes_cached_form_matrices_shared():
    model = _build_incrementally(export_midway=True)
    first = model.to_standard_form()
    x = model.get_var("x")
    model.set_objective(5 * x, sense="min")
    second = model.to_standard_form()
    assert second is not first
    assert second.objective[x.index] == 5.0
    # The constraint matrices did not change, only the objective vector.
    np.testing.assert_allclose(first.a_ub.toarray(), second.a_ub.toarray())


def test_incremental_solve_after_append_is_consistent():
    model = Model("grow")
    x = model.add_continuous("x", lb=0, ub=10)
    model.set_objective(x, sense="max")
    first = model.solve()
    assert first.objective == pytest.approx(10.0)
    model.add_constraint(x <= 4, name="cap")
    second = model.solve()
    assert second.objective == pytest.approx(4.0)


# --------------------------------------------------------------------------- #
# batch semantics
# --------------------------------------------------------------------------- #


def test_batch_merges_duplicate_columns_like_linexpr():
    legacy = Model("legacy")
    x = legacy.add_continuous("x", ub=5)
    legacy.add_constraint(LinExpr({x: 1.0}) + LinExpr({x: 2.0}) <= 4)

    batched = Model("batched")
    xb = batched.add_continuous("x", ub=5)
    batch = ConstraintBatch()
    batch.add_le(4.0, [(xb, 1.0), (xb, 2.0)])
    batched.add_linear_batch(batch)

    _assert_forms_equal(legacy.to_standard_form(), batched.to_standard_form())


def test_batch_rejects_foreign_columns():
    model = Model("target")
    model.add_continuous("x")
    other = Model("other")
    o1 = other.add_continuous("o1")
    other.add_continuous("o2")
    far = other.add_continuous("o3")
    batch = ConstraintBatch()
    batch.add_le(1.0, [(far, 1.0)])
    with pytest.raises(ModelError):
        model.add_linear_batch(batch)


def test_materialised_constraints_match_batch_rows():
    model = Model("materialise")
    x = model.add_continuous("x", ub=9)
    y = model.add_binary("y")
    batch = ConstraintBatch()
    batch.add_le(3.0, [(x, 1.0), (y, 2.0)], name="row0")
    batch.add_eq(1.0, [(y, 1.0)], name="row1")
    model.add_linear_batch(batch)
    constraints = model.constraints
    assert [c.name for c in constraints] == ["row0", "row1"]
    assert model.num_constraints == 2
    satisfied = {x: 1.0, y: 0.0}
    assert constraints[0].is_satisfied(satisfied)
    assert not constraints[1].is_satisfied(satisfied)


def test_batch_is_snapshotted_at_ingestion():
    model = Model("snapshot")
    x = model.add_continuous("x", ub=5)
    batch = ConstraintBatch()
    batch.add_le(4.0, [(x, 1.0)])
    model.add_linear_batch(batch)
    before = model.to_standard_form()
    # Mutating the caller's batch afterwards must not affect the model.
    batch.add_le(1.0, [(x, 1.0)])
    assert model.num_constraints == 1
    after = model.to_standard_form()
    assert after.a_ub.shape == before.a_ub.shape
    # Re-ingesting adds only the batch's current rows, counted correctly.
    model.add_linear_batch(batch)
    assert model.num_constraints == 3
    assert model.to_standard_form().a_ub.shape[0] == 3


def test_objective_property_returns_a_copy():
    model = Model("objcopy")
    x = model.add_continuous("x", ub=5)
    model.set_objective(2 * x, sense="max")
    first = model.to_standard_form()
    leaked = model.objective
    leaked += 10 * x  # must not mutate the model's objective
    assert model.objective.coeffs[x] == pytest.approx(2.0)
    assert model.to_standard_form().objective[x.index] == pytest.approx(2.0)
