"""Tests of the two MILP backends, including cross-checks between them."""

import pytest

from repro.errors import SolverError
from repro.ilp import Model, SolveStatus, available_backends, get_backend
from repro.ilp.backends.branch_bound import BranchAndBoundBackend
from repro.ilp.backends.highs import HighsBackend

BACKENDS = ("highs", "branch-and-bound")


def knapsack_model(weights, values, capacity):
    model = Model("knapsack")
    items = [model.add_binary(f"item{i}") for i in range(len(weights))]
    model.add_constraint(
        sum(weight * item for weight, item in zip(weights, items)) <= capacity
    )
    model.set_objective(
        sum(value * item for value, item in zip(values, items)), sense="max"
    )
    return model, items


class TestBackendRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"highs", "branch-and-bound"}

    def test_aliases_resolve(self):
        assert isinstance(get_backend("scipy"), HighsBackend)
        assert isinstance(get_backend("bnb"), BranchAndBoundBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError):
            get_backend("gurobi")


@pytest.mark.parametrize("backend", BACKENDS)
class TestBothBackends:
    def test_knapsack_optimum(self, backend):
        # Best bundle: items with weights 4 and 6 (values 5 + 9 = 14).
        model, items = knapsack_model([3, 4, 5, 6], [4, 5, 6, 9], capacity=10)
        solution = model.solve(backend=backend)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)

    def test_integer_rounding(self, backend):
        model = Model()
        n = model.add_integer("n", lb=0, ub=10)
        model.add_constraint(2 * n <= 7)
        model.set_objective(n, sense="max")
        solution = model.solve(backend=backend)
        assert solution.value(n) == pytest.approx(3.0)

    def test_infeasible_detection(self, backend):
        model = Model()
        x = model.add_continuous("x", lb=0, ub=1)
        model.add_constraint(x >= 2)
        solution = model.solve(backend=backend)
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution.is_feasible

    def test_pure_lp(self, backend):
        model = Model()
        x = model.add_continuous("x", ub=4)
        y = model.add_continuous("y", ub=4)
        model.add_constraint(x + y <= 6)
        model.set_objective(x + 3 * y, sense="max")
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(14.0)

    def test_minimisation(self, backend):
        model = Model()
        x = model.add_continuous("x", lb=2, ub=9)
        model.set_objective(5 * x, sense="min")
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(10.0)

    def test_equality_constraints(self, backend):
        model = Model()
        x = model.add_continuous("x", ub=10)
        y = model.add_continuous("y", ub=10)
        model.add_constraint(x + y == 7)
        model.add_constraint(x - y == 1)
        model.set_objective(x, sense="min")
        solution = model.solve(backend=backend)
        assert solution.value(x) == pytest.approx(4.0)
        assert solution.value(y) == pytest.approx(3.0)

    def test_binary_assignment_problem(self, backend):
        # 2x2 assignment: worker i to task j with costs; optimal is diagonal.
        costs = {(0, 0): 1, (0, 1): 5, (1, 0): 6, (1, 1): 2}
        model = Model()
        assign = {key: model.add_binary(f"a{key}") for key in costs}
        for worker in range(2):
            model.add_constraint(assign[(worker, 0)] + assign[(worker, 1)] == 1)
        for task in range(2):
            model.add_constraint(assign[(0, task)] + assign[(1, task)] == 1)
        model.set_objective(
            sum(cost * assign[key] for key, cost in costs.items()), sense="min"
        )
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(3.0)
        assert solution.value(assign[(0, 0)]) == pytest.approx(1.0)


class TestBackendAgreement:
    @pytest.mark.parametrize(
        "weights,values,capacity",
        [
            ([2, 3, 4, 5], [3, 4, 5, 6], 5),
            ([1, 2, 3, 8, 7, 4], [20, 5, 10, 40, 15, 25], 10),
            ([5, 5, 5], [10, 10, 10], 4),
        ],
    )
    def test_backends_agree_on_knapsacks(self, weights, values, capacity):
        results = []
        for backend in BACKENDS:
            model, _ = knapsack_model(weights, values, capacity)
            results.append(model.solve(backend=backend).objective)
        assert results[0] == pytest.approx(results[1])

    def test_backends_agree_on_mixed_model(self):
        objectives = []
        for backend in BACKENDS:
            model = Model()
            x = model.add_continuous("x", ub=10)
            b = model.add_binary("b")
            n = model.add_integer("n", ub=3)
            model.add_constraint(x + 4 * b + 2 * n <= 9)
            model.add_constraint(x >= n)
            model.set_objective(2 * x + 3 * b + n, sense="max")
            objectives.append(model.solve(backend=backend).objective)
        assert objectives[0] == pytest.approx(objectives[1])


class TestBranchAndBoundSpecifics:
    def test_node_limit_returns_feasible_or_limit(self):
        model, _ = knapsack_model(list(range(1, 12)), list(range(11, 0, -1)), 17)
        solution = model.solve(backend="branch-and-bound", max_nodes=3)
        assert solution.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIME_LIMIT,
        )

    def test_unknown_option_rejected(self):
        model, _ = knapsack_model([1, 2], [1, 2], 2)
        with pytest.raises(SolverError):
            model.solve(backend="branch-and-bound", warm_start=True)

    def test_gap_reported(self):
        model, _ = knapsack_model([3, 4, 5], [4, 5, 6], 9)
        solution = model.solve(backend="branch-and-bound")
        assert solution.gap is not None
        assert solution.gap <= 1e-6


class TestHighsSpecifics:
    def test_unknown_option_rejected(self):
        model = Model()
        model.add_continuous("x", ub=1)
        with pytest.raises(SolverError):
            model.solve(backend="highs", warm_start=True)

    def test_time_limit_is_accepted(self):
        model, _ = knapsack_model([2, 3, 4], [3, 4, 5], 6)
        solution = model.solve(backend="highs", time_limit=10.0)
        assert solution.is_feasible


class TestWarmStarts:
    """Warm-started solves must agree with cold solves on the optimum."""

    def _model(self):
        return knapsack_model([3, 4, 5, 6], [4, 5, 6, 9], capacity=10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_feasible_warm_start_reaches_same_optimum(self, backend):
        model, items = self._model()
        cold = model.solve(backend=backend)
        # Feasible but sub-optimal start: take only item 0.
        warm = {items[0]: 1.0, items[1]: 0.0, items[2]: 0.0, items[3]: 0.0}
        warm_solution = model.solve(backend=backend, warm_start=warm)
        assert warm_solution.status is SolveStatus.OPTIMAL
        assert warm_solution.objective == pytest.approx(cold.objective)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infeasible_warm_start_is_only_a_seed(self, backend):
        model, items = self._model()
        # Violates the capacity constraint; must not poison the result.
        warm = {item: 1.0 for item in items}
        solution = model.solve(backend=backend, warm_start=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_and_foreign_names_are_tolerated(self, backend):
        model, items = self._model()
        warm = {"item1": 1.0, "does_not_exist": 5.0}
        solution = model.solve(backend=backend, warm_start=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)

    def test_backends_agree_on_warm_started_solves(self):
        model, items = self._model()
        warm = {items[3]: 1.0}
        objectives = {
            backend: model.solve(backend=backend, warm_start=warm).objective
            for backend in BACKENDS
        }
        assert objectives["highs"] == pytest.approx(objectives["branch-and-bound"])

    def test_progressive_solve_matches_plain_optimum(self):
        model, _ = self._model()
        plain = model.solve(backend="highs")
        progressive = model.solve(
            backend="highs", time_limit=10.0, progressive=True
        )
        assert progressive.status is SolveStatus.OPTIMAL
        assert progressive.objective == pytest.approx(plain.objective)
