"""Unit tests for the Model container and its standard-form export."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ilp import Model, SolveStatus


@pytest.fixture
def model():
    return Model("model-tests")


class TestModelConstruction:
    def test_variable_lookup_by_name(self, model):
        x = model.add_continuous("x")
        assert model.get_var("x") is x

    def test_unknown_variable_lookup_raises(self, model):
        with pytest.raises(ModelError):
            model.get_var("nope")

    def test_num_variables_and_constraints(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        model.add_constraint(x + y <= 3)
        assert model.num_variables == 2
        assert model.num_constraints == 1

    def test_constraint_requires_comparison(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            model.add_constraint(x + 1)  # type: ignore[arg-type]

    def test_foreign_variable_rejected(self, model):
        other = Model("other")
        foreign = other.add_continuous("z")
        with pytest.raises(ModelError):
            model.add_constraint(foreign <= 1)

    def test_objective_sense_validation(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            model.set_objective(x, sense="sideways")

    def test_statistics(self, model):
        model.add_binary("b")
        model.add_integer("n", ub=4)
        model.add_continuous("x")
        stats = model.statistics()
        assert stats["binary_variables"] == 1
        assert stats["integer_variables"] == 1
        assert stats["continuous_variables"] == 1

    def test_auto_constraint_names(self, model):
        x = model.add_continuous("x")
        constraint = model.add_constraint(x <= 1)
        assert constraint.name

    def test_add_constraints_bulk(self, model):
        x = model.add_continuous("x")
        added = model.add_constraints([x <= 1, x >= 0], prefix="bounds")
        assert len(added) == 2
        assert added[0].name == "bounds[0]"


class TestStandardForm:
    def test_le_and_ge_rows(self, model):
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        model.add_constraint(x + 2 * y <= 4)
        model.add_constraint(x - y >= 1)
        form = model.to_standard_form()
        assert form.a_ub.shape == (2, 2)
        dense = form.a_ub.toarray()
        assert dense[0].tolist() == [1.0, 2.0]
        # GE rows are negated into <= form.
        assert dense[1].tolist() == [-1.0, 1.0]
        assert form.b_ub.tolist() == [4.0, -1.0]

    def test_eq_rows(self, model):
        x = model.add_continuous("x")
        model.add_constraint(x.to_expr() == 2)
        form = model.to_standard_form()
        assert form.a_eq.shape == (1, 1)
        assert form.b_eq.tolist() == [2.0]

    def test_integrality_vector(self, model):
        model.add_continuous("x")
        model.add_binary("b")
        model.add_integer("n", ub=9)
        form = model.to_standard_form()
        assert form.integrality.tolist() == [0, 1, 1]
        assert form.num_integer_variables == 2

    def test_objective_constant_preserved(self, model):
        x = model.add_continuous("x", ub=1)
        model.set_objective(x + 10, sense="min")
        form = model.to_standard_form()
        assert form.objective_constant == 10.0

    def test_bounds_arrays(self, model):
        model.add_continuous("x", lb=-1.0, ub=2.0)
        model.add_binary("b")
        form = model.to_standard_form()
        assert form.lower.tolist() == [-1.0, 0.0]
        assert form.upper.tolist() == [2.0, 1.0]

    def test_counts(self, model):
        x = model.add_continuous("x")
        model.add_constraint(x <= 1)
        model.add_constraint(x.to_expr() == 0.5)
        form = model.to_standard_form()
        assert form.num_constraints == 2
        assert form.num_variables == 1


class TestSolveAndCheck:
    def test_simple_lp(self, model):
        x = model.add_continuous("x", ub=10)
        y = model.add_continuous("y", ub=10)
        model.add_constraint(x + y <= 12)
        model.set_objective(3 * x + 2 * y, sense="max")
        solution = model.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(34.0)

    def test_objective_constant_in_solution(self, model):
        x = model.add_continuous("x", ub=5)
        model.set_objective(x + 100, sense="max")
        solution = model.solve()
        assert solution.objective == pytest.approx(105.0)

    def test_check_solution_reports_no_violations(self, model):
        x = model.add_continuous("x", ub=10)
        model.add_constraint(x <= 7)
        model.set_objective(x, sense="max")
        solution = model.solve()
        assert model.check_solution(solution) == []

    def test_check_solution_rejects_infeasible_result(self, model):
        x = model.add_continuous("x", ub=1)
        model.add_constraint(x >= 2)
        solution = model.solve()
        assert solution.status is SolveStatus.INFEASIBLE
        with pytest.raises(ModelError):
            model.check_solution(solution)

    def test_empty_model_is_trivially_optimal(self, model):
        solution = model.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(0.0)

    def test_value_of_expression(self, model):
        x = model.add_continuous("x", ub=4)
        model.set_objective(x, sense="max")
        solution = model.solve()
        assert solution.value(2 * x + 1) == pytest.approx(9.0)

    def test_unknown_backend(self, model):
        from repro.errors import SolverError

        model.add_continuous("x", ub=1)
        with pytest.raises(SolverError):
            model.solve(backend="cplex")
