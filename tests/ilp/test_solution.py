"""Tests for solution objects and the infeasibility diagnostics."""

import pytest

from repro.errors import ModelError
from repro.ilp import Model, SolveStatus
from repro.ilp.diagnostics import elastic_relaxation
from repro.ilp.solution import Solution, error_solution, infeasible_solution


class TestSolutionObject:
    def test_summary_contains_status_and_objective(self):
        model = Model()
        x = model.add_continuous("x", ub=3)
        model.set_objective(x, sense="max")
        solution = model.solve()
        text = solution.summary()
        assert "optimal" in text
        assert "objective=3" in text

    def test_as_name_dict(self):
        model = Model()
        x = model.add_continuous("x", ub=2)
        model.set_objective(x, sense="max")
        solution = model.solve()
        assert solution.as_name_dict() == {"x": pytest.approx(2.0)}

    def test_value_requires_feasibility(self):
        solution = infeasible_solution("highs")
        model = Model()
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            solution.value(x)

    def test_value_of_unknown_variable(self):
        model = Model()
        x = model.add_continuous("x", ub=1)
        model.set_objective(x, sense="max")
        solution = model.solve()
        other = Model().add_continuous("y")
        with pytest.raises(ModelError):
            solution.value(other)

    def test_error_solution_flags(self):
        solution = error_solution("highs", "boom")
        assert solution.status is SolveStatus.ERROR
        assert not solution.is_feasible
        assert not solution.is_optimal

    def test_feasible_but_not_optimal(self):
        model = Model()
        x = model.add_continuous("x", ub=1)
        solution = Solution(
            status=SolveStatus.FEASIBLE, objective=1.0, values={model.get_var("x"): 1.0}
        )
        assert solution.is_feasible
        assert not solution.is_optimal


class TestElasticRelaxation:
    def test_feasible_model_needs_no_slack(self):
        model = Model()
        x = model.add_continuous("x", ub=10)
        model.add_constraint(x <= 5, name="cap")
        report = elastic_relaxation(model)
        assert report.feasible_without_slack
        assert report.total_slack == pytest.approx(0.0)

    def test_conflicting_bounds_are_reported(self):
        model = Model()
        x = model.add_continuous("x", lb=0, ub=4)
        model.add_constraint(x >= 6, name="too-high")
        report = elastic_relaxation(model)
        assert not report.feasible_without_slack
        assert "too-high" in report.violated_names()
        assert report.total_slack == pytest.approx(2.0, abs=1e-4)

    def test_conflicting_equalities_reported(self):
        model = Model()
        x = model.add_continuous("x", ub=10)
        model.add_constraint(x.to_expr() == 2, name="first")
        model.add_constraint(x.to_expr() == 5, name="second")
        report = elastic_relaxation(model)
        assert not report.feasible_without_slack
        # One of the two equalities must absorb the 3-unit gap.
        assert report.total_slack == pytest.approx(3.0, abs=1e-4)

    def test_integer_only_conflict_found_with_milp_relaxation(self):
        model = Model()
        b1 = model.add_binary("b1")
        b2 = model.add_binary("b2")
        model.add_constraint(b1 + b2 == 1, name="pick-one")
        model.add_constraint(b1 >= 1, name="force-b1")
        model.add_constraint(b2 >= 1, name="force-b2")
        lp_report = elastic_relaxation(model, relax_integrality=True)
        milp_report = elastic_relaxation(model, relax_integrality=False)
        assert not lp_report.feasible_without_slack or not milp_report.feasible_without_slack
        assert not milp_report.feasible_without_slack
