"""Tests of the big-M / product / absolute-value linearisation helpers."""

import pytest

from repro.errors import ModelError
from repro.ilp import (
    Model,
    SolveStatus,
    absolute_value,
    at_most_one,
    disjunction_at_least_one,
    equal_if,
    exactly_one,
    geq_if,
    leq_if,
    max_envelope,
    product_binary_continuous,
)


class TestEqualIf:
    def test_active_switch_forces_equality(self):
        model = Model()
        switch = model.add_binary("s")
        x = model.add_continuous("x", ub=100)
        equal_if(model, switch, x, 42.0, big_m=200)
        model.add_constraint(switch >= 1)
        model.set_objective(x, sense="min")
        solution = model.solve()
        assert solution.value(x) == pytest.approx(42.0)

    def test_inactive_switch_leaves_value_free(self):
        model = Model()
        switch = model.add_binary("s")
        x = model.add_continuous("x", ub=100)
        equal_if(model, switch, x, 42.0, big_m=200)
        model.add_constraint(switch <= 0)
        model.set_objective(x, sense="max")
        solution = model.solve()
        assert solution.value(x) == pytest.approx(100.0)

    def test_requires_binary_switch(self):
        model = Model()
        not_binary = model.add_continuous("c", ub=1)
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            equal_if(model, not_binary, x, 1.0)


class TestConditionalInequalities:
    def test_leq_if(self):
        model = Model()
        switch = model.add_binary("s")
        x = model.add_continuous("x", ub=50)
        leq_if(model, switch, x, 10.0, big_m=100)
        model.add_constraint(switch >= 1)
        model.set_objective(x, sense="max")
        assert model.solve().value(x) == pytest.approx(10.0)

    def test_geq_if(self):
        model = Model()
        switch = model.add_binary("s")
        x = model.add_continuous("x", ub=50)
        geq_if(model, switch, x, 10.0, big_m=100)
        model.add_constraint(switch >= 1)
        model.set_objective(x, sense="min")
        assert model.solve().value(x) == pytest.approx(10.0)


class TestProduct:
    @pytest.mark.parametrize("binary_value,expected", [(1, 7.0), (0, 0.0)])
    def test_product_tracks_binary(self, binary_value, expected):
        model = Model()
        b = model.add_binary("b")
        x = model.add_continuous("x", ub=20)
        z = product_binary_continuous(model, b, x, lower=0.0, upper=20.0)
        model.add_constraint(b >= binary_value)
        model.add_constraint(b <= binary_value)
        model.add_constraint(x.to_expr() == 7.0)
        model.set_objective(z, sense="max")
        solution = model.solve()
        assert solution.value(z) == pytest.approx(expected)

    def test_invalid_bounds_rejected(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            product_binary_continuous(model, b, x, lower=5.0, upper=1.0)


class TestAbsoluteValue:
    @pytest.mark.parametrize("value", [-12.0, 0.0, 9.5])
    def test_exact_absolute_value(self, value):
        model = Model()
        x = model.add_continuous("x", lb=-50, ub=50)
        model.add_constraint(x.to_expr() == value)
        abs_var = absolute_value(model, x, bound=60.0, exact=True)
        # Maximising shows the value is pinned, not just lower-bounded.
        model.set_objective(abs_var, sense="max")
        solution = model.solve()
        assert solution.value(abs_var) == pytest.approx(abs(value), abs=1e-5)

    def test_envelope_under_minimisation(self):
        model = Model()
        x = model.add_continuous("x", lb=-50, ub=50)
        model.add_constraint(x.to_expr() == -8.0)
        abs_var = absolute_value(model, x, bound=60.0, exact=False)
        model.set_objective(abs_var, sense="min")
        assert model.solve().value(abs_var) == pytest.approx(8.0)


class TestMaxEnvelope:
    def test_max_under_minimisation(self):
        model = Model()
        x = model.add_continuous("x", ub=10)
        y = model.add_continuous("y", ub=10)
        model.add_constraint(x.to_expr() == 3.0)
        model.add_constraint(y.to_expr() == 7.0)
        env = max_envelope(model, [x, y], upper=20.0)
        model.set_objective(env, sense="min")
        assert model.solve().value(env) == pytest.approx(7.0)

    def test_empty_input_rejected(self):
        model = Model()
        with pytest.raises(ModelError):
            max_envelope(model, [])


class TestCardinalityHelpers:
    def test_exactly_one(self):
        model = Model()
        binaries = [model.add_binary(f"b{i}") for i in range(4)]
        exactly_one(model, binaries)
        model.set_objective(sum((i + 1) * b for i, b in enumerate(binaries)), sense="max")
        solution = model.solve()
        assert sum(solution.value(b) for b in binaries) == pytest.approx(1.0)
        assert solution.value(binaries[3]) == pytest.approx(1.0)

    def test_at_most_one(self):
        model = Model()
        binaries = [model.add_binary(f"b{i}") for i in range(3)]
        at_most_one(model, binaries)
        model.set_objective(sum(binaries), sense="max")
        assert model.solve().objective == pytest.approx(1.0)

    def test_disjunction_at_least_one(self):
        model = Model()
        selectors = [model.add_binary(f"u{i}") for i in range(4)]
        disjunction_at_least_one(model, selectors)
        model.set_objective(sum(selectors), sense="max")
        assert model.solve().objective == pytest.approx(3.0)

    def test_non_binary_members_rejected(self):
        model = Model()
        c = model.add_continuous("c", ub=1)
        with pytest.raises(ModelError):
            exactly_one(model, [c])
