"""Functional perf-smoke checks: the fast paths must actually be active.

These are not timing assertions (timings are flaky under CI load) but
structural ones: caches return cached objects, warm starts cover the model,
and the compiled path is what the hot builders emit.  Run them alone with
``pytest -m perf_smoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.warm_start import warm_start_from_seeds
from repro.geometry.point import Point
from repro.rf.microstrip import MicrostripLine

pytestmark = pytest.mark.perf_smoke


def _build(netlist):
    options = BuildOptions(
        blurred_devices=True,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=False,
    )
    return RficModelBuilder(netlist, PILPConfig.fast(), options).build()


def test_standard_form_cache_returns_same_object(tiny_netlist):
    model = _build(tiny_netlist).model
    assert model.to_standard_form() is model.to_standard_form()


def test_hot_builders_emit_batched_rows(tiny_netlist):
    from repro.ilp.expr import Constraint

    model = _build(tiny_netlist).model
    batch_rows = sum(
        len(entry)
        for entry in model._entries
        if not isinstance(entry, Constraint)
    )
    # The spacing/box/bend/no-reversal families must flow through batches.
    assert batch_rows > 0.3 * model.num_constraints


def test_warm_start_covers_most_of_the_model(tiny_netlist):
    build = _build(tiny_netlist)
    seeds = {
        "P_IN": Point(10.0, 150.0),
        "P_OUT": Point(390.0, 150.0),
        "M1": Point(200.0, 100.0),
    }
    values = warm_start_from_seeds(build, seeds)
    coverage = len(values) / build.model.num_variables
    assert coverage > 0.9, f"warm start covers only {coverage:.0%} of variables"


def test_rf_propagation_is_memoised():
    line = MicrostripLine(width=10.0, height=3.0)
    freq = np.linspace(50e9, 70e9, 41)
    first = line.propagation_constant(freq)
    second = line.propagation_constant(freq)
    assert first is second
    assert not first.flags.writeable
    # A different grid misses the cache but produces a fresh entry.
    other = line.propagation_constant(freq[:-1])
    assert other is not first


def test_runner_cache_short_circuits_execution(tmp_path):
    """A cache hit must settle a job without invoking its flow."""
    from repro.runner import BatchRunner, LayoutJob
    from tests.conftest import build_tiny_netlist

    job = LayoutJob(flow="manual", netlist=build_tiny_netlist())
    runner = BatchRunner(cache_dir=tmp_path, workers=0)
    assert runner.run_one(job).status == "completed"

    calls = {"count": 0}
    original_run = LayoutJob.run
    try:
        def counting_run(self, checkpoint=None):
            calls["count"] += 1
            return original_run(self, checkpoint=checkpoint)

        LayoutJob.run = counting_run
        warm = BatchRunner(cache_dir=tmp_path, workers=0)
        assert warm.run_one(LayoutJob(flow="manual", netlist=build_tiny_netlist())).status == "cached"
    finally:
        LayoutJob.run = original_run
    assert calls["count"] == 0


def test_job_hash_is_cached_per_instance(tiny_netlist):
    """Hashing canonicalises the whole netlist; it must only happen once."""
    from repro.runner import LayoutJob

    job = LayoutJob(flow="pilp", netlist=tiny_netlist)
    assert job.content_hash is job.content_hash


def test_observability_is_off_by_default():
    """Tracing/logging must cost nothing unless explicitly enabled.

    Structural pin of the disabled-overhead acceptance: the injectable
    clock falls through to the real clocks, and the structured logger's
    ``log()`` is a single attribute check.
    """
    from repro.obs.logging import LOG
    from repro.obs.trace import CLOCK

    assert not CLOCK.installed
    assert not LOG.enabled


def test_hot_solver_modules_do_not_import_obs():
    """The solve hot path must not grow observability imports.

    Profiling hooks live in the phase drivers (which already do I/O and
    subprocess work); the per-constraint hot builders and the ILP model
    stay observability-free so ``bench_runner_batch`` is unaffected with
    tracing off.
    """
    import inspect

    import repro.core.model_builder
    import repro.ilp.model

    for module in (repro.core.model_builder, repro.ilp.model):
        assert "repro.obs" not in inspect.getsource(module)


def test_cache_entries_carry_a_solve_profile(tmp_path):
    """Every new cache entry stores its cost breakdown (profile)."""
    from repro.runner import BatchRunner, LayoutJob
    from repro.runner.cache import ResultCache
    from tests.conftest import build_tiny_netlist

    job = LayoutJob(flow="manual", netlist=build_tiny_netlist())
    runner = BatchRunner(cache_dir=tmp_path, workers=0)
    outcome = runner.run_one(job)
    assert outcome.status == "completed"
    entry = ResultCache(tmp_path).peek(job)
    assert entry is not None
    assert entry.profile is not None
    assert entry.profile["total_s"] >= 0
