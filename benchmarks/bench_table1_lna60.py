"""Table 1, rows "60 GHz LNA": bend counts and runtime, manual vs P-ILP.

Paper reference (full-size circuit): manual 4 max / 31 total bends in more
than a week; P-ILP 2 max / 10 total bends in 6m17s at the same area and
5 / 18 at the smaller 570x810 area.
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.experiments import run_table1_circuit


def test_table1_lna60(benchmark):
    result = run_once(
        benchmark,
        run_table1_circuit,
        "lna60",
        variant=bench_variant(),
        config=bench_config(),
        include_manual=True,
    )
    print()
    print(result.to_text())
    assert len(result.rows) == 2
    first_setting = result.rows[0]
    assert first_setting.pilp_total_bends <= first_setting.manual_total_bends
