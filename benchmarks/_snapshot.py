"""Benchmark-side bridge to the ``BENCH_*.json`` snapshot trajectory.

``_bench_utils.run_once`` reports every timed experiment here; the
timings accumulate per benchmark module and ``benchmarks/conftest.py``
flushes them at session end through
:mod:`repro.loadgen.snapshot` — so running

    pytest benchmarks/bench_model_build.py --benchmark-disable

leaves a schema-versioned ``BENCH_model_build.json`` behind (and
likewise ``BENCH_runner_batch.json``), capturing the repo's perf
trajectory without any change to how the benchmarks are invoked.
The test currently executing is identified from pytest's standard
``PYTEST_CURRENT_TEST`` environment variable, so this module needs no
plugin hooks of its own.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Optional, Tuple

from repro.loadgen.snapshot import write_snapshot

#: Benchmark module stem -> snapshot name (``BENCH_<name>.json``).
#: ``bench_service_load`` is absent on purpose: it writes its own, much
#: richer snapshot (the full load report) and a timings-only flush here
#: would overwrite it.
MODULE_SNAPSHOTS = {
    "bench_model_build": "model_build",
    "bench_runner_batch": "runner_batch",
}

#: snapshot name -> {test label: wall seconds}
_TIMINGS: Dict[str, Dict[str, float]] = {}


def current_test() -> Optional[Tuple[str, str]]:
    """(snapshot name, test label) of the running test, if it is a bench.

    ``PYTEST_CURRENT_TEST`` looks like
    ``benchmarks/bench_model_build.py::test_x[param] (call)``.
    """
    raw = os.environ.get("PYTEST_CURRENT_TEST", "")
    match = re.match(r"(?P<path>[^:]+)::(?P<test>.+?)(?: \(\w+\))?$", raw)
    if not match:
        return None
    stem = os.path.splitext(os.path.basename(match.group("path")))[0]
    name = MODULE_SNAPSHOTS.get(stem)
    if name is None:
        return None
    return name, match.group("test")


def record_timing(seconds: float) -> None:
    """Attribute ``seconds`` to the currently running benchmark test."""
    located = current_test()
    if located is None:
        return
    name, label = located
    _TIMINGS.setdefault(name, {})[label] = round(seconds, 4)


def flush(context: Optional[Dict[str, object]] = None) -> list:
    """Write one snapshot per benchmark module that ran; returns the paths."""
    paths = []
    for name, timings in sorted(_TIMINGS.items()):
        data = {"timings_s": dict(sorted(timings.items()))}
        if context:
            data["context"] = dict(context)
        paths.append(write_snapshot(name, data))
    _TIMINGS.clear()
    return paths
