"""Supporting benchmark: per-phase runtime breakdown of the P-ILP flow.

The paper reports only the end-to-end runtime per circuit; this benchmark
additionally records how the time is spent across the three phases (the
snapshot sequence of Figure 7), which is useful when tuning the per-phase
time limits.
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.circuits import get_circuit
from repro.core import PILPLayoutGenerator
from repro.experiments import format_text_table


def test_pilp_phase_breakdown_buffer60(benchmark):
    circuit = get_circuit("buffer60", bench_variant())
    generator = PILPLayoutGenerator(bench_config())
    result = run_once(benchmark, generator.generate, circuit.netlist)
    print()
    print(format_text_table(result.phase_table(), title="phase breakdown (buffer60)"))
    assert result.layout.is_complete
    assert [phase.phase for phase in result.phases][0] == "phase1"
    assert any(phase.phase.startswith("phase3") for phase in result.phases)
