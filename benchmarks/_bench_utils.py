"""Shared helpers of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The MILP
flows are far too heavy for pytest-benchmark's default statistical
repetition, so each experiment is executed exactly once (``rounds=1``)
through ``benchmark.pedantic`` and its wall-clock time is what the report
shows — mirroring how the paper reports a single layout-generation runtime
per circuit.

Environment knobs
-----------------
``RFIC_FULL_SIZE=1``
    Run the full-size (published-count) circuit reconstructions instead of
    the reduced ones.  Expect paper-scale runtimes (tens of minutes per
    circuit).
``RFIC_BENCH_TIME_LIMIT``
    Per-phase MILP time limit in seconds (default 25).
"""

from __future__ import annotations

import os
import time

import _snapshot

from repro.core import PILPConfig
from repro.core.config import PhaseSettings


def bench_time_limit() -> float:
    """Per-phase MILP time limit for the benchmark flows (seconds)."""
    try:
        return float(os.environ.get("RFIC_BENCH_TIME_LIMIT", "25"))
    except ValueError:
        return 25.0


def bench_variant() -> str:
    """Circuit variant the benchmarks run on (``reduced`` unless overridden)."""
    flag = os.environ.get("RFIC_FULL_SIZE", "").strip().lower()
    return "full" if flag in ("1", "true", "yes", "on") else "reduced"


def bench_config() -> PILPConfig:
    """Solver budget used by the benchmark flows."""
    limit = bench_time_limit()
    return PILPConfig.fast().with_updates(
        phase1=PhaseSettings(time_limit=limit, mip_gap=0.1),
        phase2=PhaseSettings(time_limit=limit, mip_gap=0.1),
        phase3=PhaseSettings(time_limit=max(10.0, 0.75 * limit), mip_gap=0.1),
        max_refinement_iterations=3,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The wall-clock of the run also lands in the ``BENCH_*.json``
    trajectory (see :mod:`_snapshot`) — including under
    ``--benchmark-disable``, where pytest-benchmark itself records
    nothing but still calls the function once.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    _snapshot.record_timing(time.perf_counter() - start)
    return result
