"""Service-tier load benchmark: a real daemon under synthetic traffic.

Boots a :class:`~repro.service.daemon.LayoutService` on an ephemeral
port and drives it with the seeded workload from :mod:`repro.loadgen` —
hundreds of mixed submissions (cold solves, attaches, a cached revisit
wave, background floods) from concurrent submitters while SSE watchers
stream events.  The full measurement report — admission latency
percentiles, settle latency, throughput per dispatcher, queue depth over
time, SSE delivery lag, shed rates, and the exact client/server counter
reconciliation — is written to ``BENCH_service_load.json``.

The run *fails* if the counters do not reconcile exactly: this benchmark
doubles as the end-to-end regression test for the scheduler's lock-
protected stats counters.

Knobs: ``RFIC_LOAD_JOBS`` (total submissions, default 200) and
``RFIC_LOAD_UNIQUE`` (distinct hashes, default 40) scale the workload up
for manual runs; the ``rfic-layout loadtest`` CLI exposes the same
harness without pytest.
"""

from __future__ import annotations

import os

from _bench_utils import run_once

from repro.loadgen import (
    LoadTestConfig,
    WorkloadSpec,
    run_load_test,
    write_snapshot,
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def test_service_load(benchmark, tmp_path):
    spec = WorkloadSpec(
        jobs=_env_int("RFIC_LOAD_JOBS", 200),
        unique_jobs=_env_int("RFIC_LOAD_UNIQUE", 40),
        submitters=8,
        watchers=24,
        cached_wave=40,
        seed=2016,
    )
    config = LoadTestConfig(concurrency=2, class_limits={"background": 4})
    report = run_once(
        benchmark, run_load_test, spec, data_dir=tmp_path / "svc", config=config
    )
    write_snapshot("service_load", report.to_snapshot_data())
    reconciliation = report.reconcile()
    assert report.ok, {k: v for k, v in reconciliation.items() if not v["ok"]}
    assert not report.lost_jobs
    assert not report.submit_errors
