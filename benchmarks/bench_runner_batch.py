"""Batch-runner wall-clock: cold serial vs cold parallel vs fully cached.

Runs the three benchmark circuits' manual-like and P-ILP flows through
``repro.runner`` the way ``rfic-layout batch`` does, and times

* a **cold serial** batch (1 worker, empty cache),
* a **cold parallel** batch (2 workers, empty cache),
* a **cached** re-run of the same batch (every job a cache hit).

The acceptance targets from the runner's introduction: the cached run
finishes in <5% of the cold run's wall-clock, and on a multi-core machine
the 2-worker cold run beats the serial cold run.  Uses the same reduced /
full variant and ``RFIC_BENCH_TIME_LIMIT`` knobs as the other benchmarks.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

from _bench_utils import bench_config, bench_variant, run_once

from repro.circuits import circuit_names, get_circuit
from repro.runner import BatchRunner, GeneratorSpec, LayoutJob


def _jobs(flow: str):
    config = bench_config()
    variant = bench_variant()
    return [
        LayoutJob(
            flow=flow,
            generator=GeneratorSpec(name, variant),
            config=config,
            label=f"{name}:{flow}",
        )
        for name in circuit_names()
    ]


def _run_batch(flow: str, workers: int, cache_dir: Path):
    runner = BatchRunner(cache_dir=cache_dir, workers=workers)
    outcomes = runner.run(_jobs(flow))
    assert all(outcome.ok for outcome in outcomes), [o.error for o in outcomes]
    return outcomes


@pytest.fixture(params=["manual", "pilp"])
def flow(request):
    return request.param


@pytest.fixture
def cache_dir():
    directory = Path(tempfile.mkdtemp(prefix="rfic-bench-cache-"))
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def test_batch_cold_serial(benchmark, flow, cache_dir):
    outcomes = run_once(benchmark, _run_batch, flow, 1, cache_dir)
    assert all(outcome.status == "completed" for outcome in outcomes)


def test_batch_cold_parallel2(benchmark, flow, cache_dir):
    outcomes = run_once(benchmark, _run_batch, flow, 2, cache_dir)
    assert all(outcome.status == "completed" for outcome in outcomes)


def test_batch_cached(benchmark, flow, cache_dir):
    _run_batch(flow, 1, cache_dir)  # populate outside the timed region
    outcomes = run_once(benchmark, _run_batch, flow, 0, cache_dir)
    assert all(outcome.status == "cached" for outcome in outcomes)
