"""Ablation: HiGHS backend vs the pure-Python branch-and-bound backend.

The paper used Gurobi; this reproduction ships two interchangeable backends.
The ablation times both on the same fixed MILP instances (a bin-packing-like
model resembling the non-overlap disjunctions of the layout model) and checks
that they agree on the optimal objective.
"""

import pytest

from repro.ilp import Model, SolveStatus


def _packing_model(num_items: int = 8) -> Model:
    """Place items on a line of length 100 without overlap, minimise spread."""
    model = Model("packing")
    sizes = [7 + (i * 3) % 11 for i in range(num_items)]
    xs = [model.add_continuous(f"x{i}", lb=0, ub=100 - sizes[i]) for i in range(num_items)]
    spread = model.add_continuous("spread", lb=0, ub=100)
    for i in range(num_items):
        model.add_constraint(spread >= xs[i] + sizes[i])
        for j in range(i + 1, num_items):
            left_of = model.add_binary(f"u{i}_{j}")
            model.add_constraint(xs[i] + sizes[i] <= xs[j] + 200 * (1 - left_of))
            model.add_constraint(xs[j] + sizes[j] <= xs[i] + 200 * left_of)
    model.set_objective(spread, sense="min")
    return model


EXPECTED_OPTIMUM = sum(7 + (i * 3) % 11 for i in range(8))


def test_solver_highs(benchmark):
    solution = benchmark.pedantic(
        lambda: _packing_model().solve(backend="highs", time_limit=120),
        rounds=1,
        iterations=1,
    )
    print()
    print("highs            :", solution.summary())
    assert solution.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
    assert solution.objective == pytest.approx(EXPECTED_OPTIMUM, rel=1e-6)


def test_solver_branch_and_bound(benchmark):
    solution = benchmark.pedantic(
        lambda: _packing_model(num_items=6).solve(
            backend="branch-and-bound", time_limit=120
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("branch-and-bound :", solution.summary())
    expected = sum(7 + (i * 3) % 11 for i in range(6))
    assert solution.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
    assert solution.objective == pytest.approx(expected, rel=1e-6)
