"""Table 1, rows "94 GHz LNA": bend counts and runtime, manual vs P-ILP.

Paper reference (full-size circuit): manual 9 max / 59 total bends in more
than two weeks; P-ILP 4 max / 22 total bends in 18m05s at the same area and
5 / 29 at the smaller 845x580 area.  The benchmark reproduces the qualitative
shape — P-ILP needs no more bends than the sequential baseline and finishes
in minutes — on the reconstructed circuit (reduced by default).
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.experiments import run_table1_circuit


def test_table1_lna94(benchmark):
    result = run_once(
        benchmark,
        run_table1_circuit,
        "lna94",
        variant=bench_variant(),
        config=bench_config(),
        include_manual=True,
    )
    print()
    print(result.to_text())
    assert len(result.rows) == 2
    first_setting = result.rows[0]
    assert first_setting.manual_total_bends is not None
    # The paper's qualitative claim for this circuit.
    assert first_setting.pilp_total_bends <= first_setting.manual_total_bends
    assert first_setting.pilp_max_bends <= max(first_setting.manual_max_bends, 1)
