"""Figure 11(b): RF simulation of the 60 GHz buffer, manual vs P-ILP layout.

Paper reference: gain at 60 GHz is 16.998 dB for the generated (P-ILP,
500x800 um2) layout vs 16.791 dB for the manual layout (595x850 um2).
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.experiments import run_figure11_circuit


def test_figure11_buffer60(benchmark):
    result = run_once(
        benchmark,
        run_figure11_circuit,
        "buffer60",
        variant=bench_variant(),
        config=bench_config(),
    )
    print()
    print(result.to_text())
    assert result.shape_holds(tolerance_db=0.3), (
        f"p-ilp gain {result.pilp.gain_db_at_f0:.2f} dB fell below manual "
        f"{result.manual.gain_db_at_f0:.2f} dB"
    )
