"""Ablation: one-shot exact ILP (Section 4) vs progressive P-ILP (Section 5).

The paper motivates the progressive flow by the unacceptable runtime of the
exact model.  On a circuit small enough for both to finish, the ablation
checks that (i) both produce DRC-clean exact-length layouts and (ii) the
progressive flow does not lose layout quality (bend counts) relative to the
exact optimum.
"""

from _bench_utils import bench_config, run_once

from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_rf_pad,
    make_transistor,
)
from repro.core import ExactLayoutGenerator, PILPLayoutGenerator


def _tiny_netlist() -> Netlist:
    devices = [make_rf_pad("P_IN"), make_rf_pad("P_OUT"), make_transistor("M1")]
    nets = [
        MicrostripNet("ms_in", Terminal("P_IN", "SIG"), Terminal("M1", "G"), 250.0),
        MicrostripNet("ms_out", Terminal("M1", "D"), Terminal("P_OUT", "SIG"), 300.0),
    ]
    return Netlist("tiny", devices, nets, LayoutArea(400.0, 300.0), operating_frequency_ghz=94.0)


def test_ablation_exact_flow(benchmark):
    netlist = _tiny_netlist()
    result = run_once(benchmark, ExactLayoutGenerator(bench_config()).generate, netlist)
    print()
    print("exact  :", result.summary())
    assert result.drc.is_clean
    assert result.metrics.max_abs_length_error <= 0.5


def test_ablation_progressive_flow(benchmark):
    netlist = _tiny_netlist()
    result = run_once(benchmark, PILPLayoutGenerator(bench_config()).generate, netlist)
    print()
    print("p-ilp  :", result.summary())
    assert result.layout.is_complete
    # The exact optimum for this instance needs at most one bend per net.
    assert result.metrics.total_bend_count <= 4
