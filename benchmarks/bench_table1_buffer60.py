"""Table 1, rows "60 GHz Buffer": bend counts and runtime, manual vs P-ILP.

Paper reference (full-size circuit): manual 4 max / 27 total bends in more
than a week; P-ILP 3 max / 7 total bends in 4m22s at the same area and
3 / 13 at the smaller 505x720 area.
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.experiments import run_table1_circuit


def test_table1_buffer60(benchmark):
    result = run_once(
        benchmark,
        run_table1_circuit,
        "buffer60",
        variant=bench_variant(),
        config=bench_config(),
        include_manual=True,
    )
    print()
    print(result.to_text())
    assert len(result.rows) == 2
    first_setting = result.rows[0]
    assert first_setting.pilp_total_bends <= first_setting.manual_total_bends
    # The stress (smaller) area still yields a complete layout.
    assert result.rows[1].pilp_total_bends >= 0
