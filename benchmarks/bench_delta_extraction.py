"""Supporting experiment (Section 2.2 / Figure 3): extracting δ by RF simulation.

The paper obtains the equivalent-length compensation δ of a smoothed bend
from RF simulation.  This benchmark runs the same extraction with the RF
substrate across the two operating frequencies used in the paper and checks
that the value is a small negative length of the order of the technology
default used by the layout model.
"""

import numpy as np

from repro.rf import MicrostripLine, delta_versus_frequency
from repro.tech import CMOS90


def test_delta_extraction(benchmark):
    line = MicrostripLine.from_technology(CMOS90)
    frequencies = np.array([60e9, 77e9, 94e9])

    deltas = benchmark(delta_versus_frequency, line, frequencies)
    print()
    for frequency, delta in zip(frequencies, deltas):
        print(f"  delta at {frequency/1e9:5.1f} GHz: {delta:6.2f} um")
    assert np.all(deltas < 0.0)
    assert np.all(deltas > -20.0)
    # Weak frequency dependence: a single technology constant is a fair model.
    assert np.ptp(deltas) < 5.0
