"""Pytest fixtures for the benchmark harness (see ``_bench_utils``)."""

from __future__ import annotations

import pytest

from _bench_utils import bench_config, bench_variant

from repro.core import PILPConfig


@pytest.fixture
def pilp_config() -> PILPConfig:
    """The MILP budget the benchmark flows run with."""
    return bench_config()


@pytest.fixture
def variant() -> str:
    """Circuit variant (``reduced`` by default, ``full`` with RFIC_FULL_SIZE)."""
    return bench_variant()
