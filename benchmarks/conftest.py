"""Pytest fixtures for the benchmark harness (see ``_bench_utils``)."""

from __future__ import annotations

import pytest

import _snapshot
from _bench_utils import bench_config, bench_time_limit, bench_variant

from repro.core import PILPConfig


@pytest.fixture
def pilp_config() -> PILPConfig:
    """The MILP budget the benchmark flows run with."""
    return bench_config()


@pytest.fixture
def variant() -> str:
    """Circuit variant (``reduced`` by default, ``full`` with RFIC_FULL_SIZE)."""
    return bench_variant()


def pytest_sessionfinish(session, exitstatus):
    """Persist the session's timings as ``BENCH_*.json`` snapshots."""
    paths = _snapshot.flush(
        context={"variant": bench_variant(), "time_limit_s": bench_time_limit()}
    )
    for path in paths:
        print(f"\nwrote benchmark snapshot {path}")
