"""Supporting benchmark: the manual-like baseline flow on the full circuits.

Not a table or figure of its own, but the "Manual" column of Table 1 comes
from this flow; timing it separately documents that the baseline itself is
cheap (seconds), so the Table 1 runtimes are dominated — as in the paper —
by the ILP solves.
"""

from _bench_utils import run_once

from repro.baselines import AnnealingConfig, ManualLikeFlow
from repro.circuits import get_circuit


def test_baseline_manual_like_lna94_full(benchmark):
    circuit = get_circuit("lna94", "full")
    flow = ManualLikeFlow(AnnealingConfig(iterations=5000))
    result = run_once(benchmark, flow.generate, circuit.netlist)
    print()
    print(result.summary())
    assert result.layout.is_complete
    # Sequential length matching costs many bends — the effect the paper's
    # Table 1 quantifies (59 total bends for the real manual layout).
    assert result.metrics.total_bend_count > 20
    assert result.metrics.max_abs_length_error <= 5.0
