"""Figure 11(a): RF simulation of the 94 GHz LNA, manual vs P-ILP layout.

Paper reference: gain at 94 GHz is 17.912 dB for the generated (P-ILP,
800x600 um2) layout vs 17.196 dB for the manual layout (890x615 um2), with
comparable return loss.  The benchmark regenerates the S11/S21/S22 series
with the RF substrate and checks the qualitative shape: the P-ILP layout's
gain at the operating frequency is at least the manual layout's.
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.experiments import run_figure11_circuit


def test_figure11_lna94(benchmark):
    result = run_once(
        benchmark,
        run_figure11_circuit,
        "lna94",
        variant=bench_variant(),
        config=bench_config(),
    )
    print()
    print(result.to_text())
    assert result.designed.sparameters.frequencies.size > 0
    assert result.shape_holds(tolerance_db=0.3), (
        f"p-ilp gain {result.pilp.gain_db_at_f0:.2f} dB fell below manual "
        f"{result.manual.gain_db_at_f0:.2f} dB"
    )
