"""Micro-benchmark: MILP model construction + standard-form compilation.

The solver dominates end-to-end flow time, so the batched model-build fast
path (:mod:`repro.ilp.compile`) is easiest to observe in isolation: this
benchmark builds the Phase-1 and exact models for the two headline circuits
and lowers them to standard form, without ever invoking a solver.

Run with ``pytest benchmarks/bench_model_build.py`` (add
``--benchmark-disable`` for a quick perf smoke without the statistical
repetition).
"""

from _bench_utils import bench_config, bench_variant, run_once

from repro.circuits import get_circuit
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.phase1 import _phase1_windows
from repro.core.windows import mean_device_extent


def _phase1_options(netlist, config) -> BuildOptions:
    reservation = config.blur_margin_factor * mean_device_extent(netlist)
    device_windows, chain_windows = _phase1_windows(netlist, config)
    return BuildOptions(
        blurred_devices=True,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=False,
        extra_segment_margin=reservation,
        chain_point_counts={
            net.name: config.chain_points_per_microstrip
            for net in netlist.microstrips
        },
        device_windows=device_windows,
        chain_windows=chain_windows,
    )


def _exact_options(netlist, config) -> BuildOptions:
    return BuildOptions(
        blurred_devices=False,
        exact_lengths=True,
        allow_overlap=False,
        include_device_blocks=True,
    )


def _build_and_compile(netlist, config, options_factory):
    options = options_factory(netlist, config)
    build = RficModelBuilder(netlist, config, options).build()
    form = build.model.to_standard_form()
    return build, form


def _report(name, build, form):
    stats = build.model.statistics()
    nnz = form.a_ub.nnz + form.a_eq.nnz
    print(
        f"\n{name}: {stats['variables']} vars, {stats['constraints']} rows, "
        f"{nnz} nonzeros, {build.num_spacing_pairs} spacing pairs"
    )


def test_model_build_phase1_buffer60(benchmark):
    circuit = get_circuit("buffer60", bench_variant())
    config = bench_config()
    build, form = run_once(
        benchmark, _build_and_compile, circuit.netlist, config, _phase1_options
    )
    _report("phase1[buffer60]", build, form)
    assert form.num_constraints > 0
    assert form.num_integer_variables > 0


def test_model_build_phase1_lna94(benchmark):
    circuit = get_circuit("lna94", bench_variant())
    config = bench_config()
    build, form = run_once(
        benchmark, _build_and_compile, circuit.netlist, config, _phase1_options
    )
    _report("phase1[lna94]", build, form)
    assert form.num_constraints > 0
    assert form.num_integer_variables > 0


def test_model_build_exact_buffer60(benchmark):
    circuit = get_circuit("buffer60", bench_variant())
    config = bench_config()
    build, form = run_once(
        benchmark, _build_and_compile, circuit.netlist, config, _exact_options
    )
    _report("exact[buffer60]", build, form)
    assert form.num_constraints > 0


def test_model_build_exact_lna94(benchmark):
    circuit = get_circuit("lna94", bench_variant())
    config = bench_config()
    build, form = run_once(
        benchmark, _build_and_compile, circuit.netlist, config, _exact_options
    )
    _report("exact[lna94]", build, form)
    assert form.num_constraints > 0


def test_incremental_recompile_is_cheap(benchmark):
    """Appending to a compiled model must not re-lower the whole model."""
    circuit = get_circuit("buffer60", bench_variant())
    config = bench_config()
    options = _exact_options(circuit.netlist, config)
    build = RficModelBuilder(circuit.netlist, config, options).build()
    model = build.model
    model.to_standard_form()  # prime the cache

    def append_and_recompile():
        x = model.add_continuous("")
        model.add_constraint(x <= 1.0)
        return model.to_standard_form()

    form = run_once(benchmark, append_and_recompile)
    assert form.num_variables == model.num_variables
