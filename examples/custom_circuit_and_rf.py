#!/usr/bin/env python3
"""Lay out a custom two-stage amplifier and check its RF response.

This example shows the full loop an RFIC designer cares about:

1. describe a circuit (devices + fixed-length microstrips) programmatically,
2. generate its layout with the P-ILP flow,
3. feed the routed lengths and bend counts into the RF substrate and compare
   the layout's S-parameters with the "as designed" response.

Because the generated layout matches every microstrip length exactly and
keeps the bend count low, the simulated response stays on top of the design
target — which is the whole point of the paper.

Run with::

    python examples/custom_circuit_and_rf.py
"""

from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_capacitor,
    make_rf_pad,
    make_transistor,
)
from repro.core import PILPConfig, PILPLayoutGenerator
from repro.rf import AmplifierModel, SignalChain, default_frequency_sweep


def build_circuit():
    """A 60 GHz two-stage amplifier with an inter-stage DC block."""
    devices = [
        make_rf_pad("P_IN"),
        make_rf_pad("P_OUT"),
        make_transistor("M1", gm_ms=55.0),
        make_transistor("M2", gm_ms=55.0),
        make_capacitor("C_BLOCK", c_ff=90.0),
    ]
    microstrips = [
        MicrostripNet("ms_in", Terminal("P_IN", "SIG"), Terminal("M1", "G"), target_length=320.0),
        MicrostripNet("ms_inter1", Terminal("M1", "D"), Terminal("C_BLOCK", "P1"), target_length=240.0),
        MicrostripNet("ms_inter2", Terminal("C_BLOCK", "P2"), Terminal("M2", "G"), target_length=240.0),
        MicrostripNet("ms_out", Terminal("M2", "D"), Terminal("P_OUT", "SIG"), target_length=320.0),
    ]
    netlist = Netlist(
        "two_stage_60g",
        devices,
        microstrips,
        area=LayoutArea(640.0, 420.0),
        operating_frequency_ghz=60.0,
    )
    chain = SignalChain.from_shorthand(
        netlist.name,
        [
            ("device", "P_IN"),
            ("line", "ms_in"),
            ("device", "M1"),
            ("line", "ms_inter1"),
            ("device", "C_BLOCK"),
            ("line", "ms_inter2"),
            ("device", "M2"),
            ("line", "ms_out"),
            ("device", "P_OUT"),
        ],
    )
    return netlist, chain


def main() -> None:
    netlist, chain = build_circuit()
    result = PILPLayoutGenerator(PILPConfig.fast()).generate(netlist)

    print("layout result :", result.summary())
    for net_metrics in result.metrics.per_net.values():
        print(
            f"  {net_metrics.net_name:<10} length "
            f"{net_metrics.equivalent_length:7.1f} um (target "
            f"{net_metrics.target_length:7.1f}), bends {net_metrics.bend_count}"
        )

    model = AmplifierModel(netlist, chain)
    frequencies = default_frequency_sweep(netlist.operating_frequency_ghz)
    f0 = netlist.operating_frequency_ghz * 1e9

    designed = model.simulate(frequencies)
    laid_out = model.simulate(frequencies, result.layout)

    print("\nRF response at 60 GHz:")
    print(f"  designed : S21 = {designed.gain_db(f0):6.2f} dB, "
          f"S11 = {designed.input_return_loss_db(f0):6.2f} dB")
    print(f"  laid out : S21 = {laid_out.gain_db(f0):6.2f} dB, "
          f"S11 = {laid_out.input_return_loss_db(f0):6.2f} dB")
    print(f"  gain penalty of the layout: "
          f"{designed.gain_db(f0) - laid_out.gain_db(f0):.3f} dB")


if __name__ == "__main__":
    main()
