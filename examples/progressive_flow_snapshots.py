#!/usr/bin/env python3
"""Reproduce the phase-by-phase snapshots of Figure 7.

The paper illustrates its progressive flow with a snapshot after each phase:
blurred-device routing, device visualisation / overlap fixing, iterative
refinement, and the resulting layout.  This example runs the flow on the
reduced 60 GHz buffer reconstruction and writes one SVG per phase into
``examples/snapshots/``.

Run with::

    python examples/progressive_flow_snapshots.py
"""

from pathlib import Path

from repro.circuits import get_circuit
from repro.core import PILPConfig, PILPLayoutGenerator
from repro.layout import save_phase_snapshots


def main() -> None:
    circuit = get_circuit("buffer60")
    generator = PILPLayoutGenerator(PILPConfig.fast())
    result = generator.generate(circuit.netlist)

    print("phase progress:")
    for row in result.phase_table():
        print(f"  {row['phase']:<12} bends={row['total_bends']:<3} "
              f"max length error={row['max_abs_length_error_um']:.2f} um "
              f"overlap={row['total_overlap_um']:.1f} um")
    print("final layout  :", result.summary())

    snapshots = generator.snapshots(result)
    output_dir = Path(__file__).resolve().parent / "snapshots"
    paths = save_phase_snapshots(snapshots, output_dir, scale=1.0)
    print(f"\n{len(paths)} snapshots written to {output_dir}/")
    for path in paths:
        print(f"  {path.name}")


if __name__ == "__main__":
    main()
