#!/usr/bin/env python3
"""Compare the P-ILP flow with the manual-like baseline on the 94 GHz LNA.

This is the scenario behind Table 1 of the paper: the same circuit is laid
out twice — once with the conventional place-then-route methodology (the
"manual" stand-in) and once with the concurrent P-ILP flow — and the bend
statistics, runtime and DRC status are put side by side.  By default the
reduced reconstruction of the LNA is used so the script finishes in a few
minutes; set ``RFIC_FULL_SIZE=1`` to run the published-size circuit.

Run with::

    python examples/lna94_flow_comparison.py
"""

from pathlib import Path

from repro.baselines import ManualLikeFlow
from repro.circuits import get_circuit
from repro.core import PILPConfig, PILPLayoutGenerator
from repro.experiments import format_text_table
from repro.layout import compare_metrics, save_svg


def main() -> None:
    circuit = get_circuit("lna94")
    netlist = circuit.netlist
    print(f"circuit {netlist.name}: {netlist.num_microstrips} microstrips, "
          f"{netlist.num_devices} devices, area {netlist.area.width:.0f} x "
          f"{netlist.area.height:.0f} um")

    manual = ManualLikeFlow().generate(netlist)
    pilp = PILPLayoutGenerator(PILPConfig.fast()).generate(netlist)

    rows = [manual.summary(), pilp.summary()]
    print()
    print(format_text_table(rows, title="Table-1 style comparison"))

    comparison = compare_metrics(manual.metrics, pilp.metrics)
    reduction = comparison["total_bend_reduction"]
    if reduction is not None:
        print(f"\nP-ILP removes {100.0 * reduction:.0f}% of the baseline's bends "
              f"({comparison['baseline_total_bends']} -> "
              f"{comparison['candidate_total_bends']}).")

    output_dir = Path(__file__).resolve().parent
    save_svg(manual.layout, output_dir / "lna94_manual_like.svg")
    save_svg(pilp.layout, output_dir / "lna94_pilp.svg")
    print(f"\nrenderings written to {output_dir}/lna94_*.svg")


if __name__ == "__main__":
    main()
