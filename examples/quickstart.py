#!/usr/bin/env python3
"""Quickstart: generate an RFIC layout for a small hand-written circuit.

This example builds the smallest meaningful mm-wave circuit — an input pad,
a transistor and an output pad connected by two fixed-length microstrips —
and runs the paper's progressive ILP flow on it.  It prints the resulting
bend statistics and design-rule report and writes the layout as JSON and SVG
next to this script.

Run with::

    python examples/quickstart.py
"""

from pathlib import Path

from repro.circuit import (
    LayoutArea,
    MicrostripNet,
    Netlist,
    Terminal,
    make_rf_pad,
    make_transistor,
)
from repro.core import PILPConfig, PILPLayoutGenerator
from repro.layout import save_layout, save_svg


def build_netlist() -> Netlist:
    """An input pad, one common-source transistor, and an output pad.

    The two microstrips must come out at exactly 250 um and 300 um of
    equivalent length — that is the fixed-length requirement that makes
    RFIC routing hard.
    """
    devices = [
        make_rf_pad("P_IN"),
        make_rf_pad("P_OUT"),
        make_transistor("M1", gm_ms=45.0),
    ]
    microstrips = [
        MicrostripNet("ms_in", Terminal("P_IN", "SIG"), Terminal("M1", "G"), target_length=250.0),
        MicrostripNet("ms_out", Terminal("M1", "D"), Terminal("P_OUT", "SIG"), target_length=300.0),
    ]
    return Netlist(
        "quickstart",
        devices,
        microstrips,
        area=LayoutArea(400.0, 300.0),
        operating_frequency_ghz=94.0,
    )


def main() -> None:
    netlist = build_netlist()
    print(f"circuit: {netlist.num_devices} devices, {netlist.num_microstrips} microstrips, "
          f"area {netlist.area.width:.0f} x {netlist.area.height:.0f} um")

    generator = PILPLayoutGenerator(PILPConfig.fast())
    result = generator.generate(netlist)

    print("\nphase-by-phase progress:")
    for row in result.phase_table():
        print(f"  {row['phase']:<10} status={row['status']:<9} "
              f"bends={row['total_bends']:<3} "
              f"max length error={row['max_abs_length_error_um']:.2f} um")

    metrics = result.metrics
    print("\nfinal layout:")
    print(f"  total bends        : {metrics.total_bend_count}")
    print(f"  max bends per line : {metrics.max_bend_count}")
    print(f"  max length error   : {metrics.max_abs_length_error:.3f} um")
    print(f"  DRC clean          : {result.drc.is_clean}")
    print(f"  runtime            : {result.runtime:.1f} s")

    output_dir = Path(__file__).resolve().parent
    json_path = save_layout(result.layout, output_dir / "quickstart_layout.json")
    svg_path = save_svg(result.layout, output_dir / "quickstart_layout.svg")
    print(f"\nlayout written to {json_path}")
    print(f"rendering written to {svg_path}")


if __name__ == "__main__":
    main()
